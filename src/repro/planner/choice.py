"""Plan-choice records: what the planner picked, what it turned down.

Every decision site produces one :class:`PlanChoice` carrying the chosen
:class:`Alternative` and every rejected one, each with its cost estimate
and a one-line reason — EXPLAIN for the optimizer itself.  A whole
query's choices roll up into a :class:`PlanDecision`, which is what
``explain --cost``, the ``plan`` subcommand and the telemetry feedback
loop consume (it serialises to JSON losslessly).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Decision kinds a planner run can emit.
CHOICE_KINDS = ("edge-order", "currency", "engine")


@dataclass(frozen=True)
class Alternative:
    """One candidate shape at a decision site, with its cost estimate."""

    label: str         #: e.g. "reserve, bidder" or "batch"
    cost: float        #: abstract work units under the cost model
    detail: str = ""   #: how the label maps onto the plan

    def render(self) -> str:
        text = f"{self.label} (cost {self.cost:,.0f})"
        if self.detail:
            text += f" — {self.detail}"
        return text


@dataclass
class PlanChoice:
    """One decision: a site, the chosen shape, the rejected shapes."""

    site: str                  #: operator/pattern-node the choice is about
    kind: str                  #: one of :data:`CHOICE_KINDS`
    chosen: Alternative
    rejected: List[Alternative] = field(default_factory=list)
    reason: str = ""
    #: tracer-aligned post-order index of the operator (feedback key)
    op_index: Optional[int] = None

    @property
    def changed(self) -> bool:
        """Whether the chosen shape differs from the translator's."""
        return any(alt.label == "source order" for alt in self.rejected)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def render(self) -> List[str]:
        lines = [f"{self.site} [{self.kind}]"]
        lines.append(f"  chosen:   {self.chosen.render()}")
        for alt in self.rejected:
            lines.append(f"  rejected: {alt.render()}")
        if self.reason:
            lines.append(f"  why: {self.reason}")
        return lines


@dataclass
class PlanDecision:
    """Every choice of one planner run, plus the plan-level summary."""

    choices: List[PlanChoice] = field(default_factory=list)
    total_cost: float = 0.0
    #: number of pattern nodes whose edge order differs from the source
    reordered_sites: int = 0
    #: chosen operator currency: "batch" or "tree"
    currency: str = "tree"
    #: chosen join engine: "fast" or "legacy"
    engine: str = "fast"
    #: per-operator currency vetoes (post-order indexes forced per-tree)
    tree_vetoes: List[int] = field(default_factory=list)

    def by_kind(self, kind: str) -> List[PlanChoice]:
        return [c for c in self.choices if c.kind == kind]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "total_cost": round(self.total_cost, 1),
            "reordered_sites": self.reordered_sites,
            "currency": self.currency,
            "engine": self.engine,
            "tree_vetoes": list(self.tree_vetoes),
            "choices": [choice.to_dict() for choice in self.choices],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PlanDecision":
        decision = cls(
            total_cost=payload.get("total_cost", 0.0),
            reordered_sites=payload.get("reordered_sites", 0),
            currency=payload.get("currency", "tree"),
            engine=payload.get("engine", "fast"),
            tree_vetoes=list(payload.get("tree_vetoes", ())),
        )
        for entry in payload.get("choices", ()):
            decision.choices.append(
                PlanChoice(
                    site=entry["site"],
                    kind=entry["kind"],
                    chosen=Alternative(**entry["chosen"]),
                    rejected=[
                        Alternative(**alt) for alt in entry["rejected"]
                    ],
                    reason=entry.get("reason", ""),
                    op_index=entry.get("op_index"),
                )
            )
        return decision

    def summary(self) -> str:
        return (
            f"cost {self.total_cost:,.0f} | {self.currency} currency, "
            f"{self.engine} joins, {self.reordered_sites} of "
            f"{len(self.by_kind('edge-order'))} join sites reordered"
        )

    def render(self) -> str:
        """The full chosen-vs-rejected report, one block per choice."""
        lines = [f"plan decision: {self.summary()}"]
        for choice in self.choices:
            lines.append("")
            lines.extend(choice.render())
        return "\n".join(lines)
