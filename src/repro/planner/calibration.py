"""Measured cost-model calibration: constants from the traced sweep.

The cost model's tuning constants
(:data:`~repro.planner.cost.LEGACY_JOIN_FACTOR`,
:data:`~repro.planner.cost.BATCH_SAVING_PER_ROW`,
:data:`~repro.planner.cost.BATCH_CONVERT_PER_ROW`) are hand-fit against
committed benchmark sweeps; they are *this machine's* ratios only by
accident.  ``repro calibrate`` replaces the accident with a measurement:
it runs the 23-query XMark sweep under the runtime tracer and distils

* **per-operator unit costs** — self time per output row for every
  operator in the core registry (Shadow/Illuminate included via the
  ``optimize`` pass), the observability half of the table: ``explain
  --cost`` and the drift test read these;
* **the legacy join factor** — the measured fast-vs-legacy ratio of
  structural-join time (``Select``/``Join`` self time with the fast
  path on vs off), clamped to ``[1, 10]``;
* **the batch constants** — a two-parameter least squares of the
  per-query tree-vs-batch wall-time difference against the *estimated*
  columnar and boundary row flows (estimated on purpose: the planner
  applies the constants to the same estimates, so calibrating against
  them keeps the units consistent).

The result persists as a :class:`CalibrationTable` JSON file.  A table
becomes *active* through :func:`set_calibration` (or the
``REPRO_CALIBRATION=<path>`` environment toggle), at which point
:func:`calibrated` — the lookup the planner and the feedback re-coster
go through — serves the measured values instead of the defaults.  The
defaults in :mod:`repro.planner.cost` never change: the committed docs
and tests pin them, and a missing/invalid table falls back cleanly.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from .cost import (
    BATCH_CONVERT_PER_ROW,
    BATCH_SAVING_PER_ROW,
    LEGACY_JOIN_FACTOR,
)

#: Environment toggle: point at a table file to activate it process-wide
#: (mirrors ``REPRO_PLANNER`` / ``REPRO_SPANS``).
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: Conventional table location at a repository root.
DEFAULT_CALIBRATION_PATH = "CALIBRATION.json"

#: The hand-fit defaults :func:`calibrated` falls back to.
DEFAULT_CONSTANTS: Dict[str, float] = {
    "legacy_join_factor": LEGACY_JOIN_FACTOR,
    "batch_saving_per_row": BATCH_SAVING_PER_ROW,
    "batch_convert_per_row": BATCH_CONVERT_PER_ROW,
}

#: Sanity clamps on measured constants: a pathological run (timer
#: resolution, a loaded machine) must not produce a table that makes
#: the planner absurd.  The legacy ratio is a ratio of like quantities;
#: the batch constants are work units per row like their defaults.
LEGACY_FACTOR_RANGE = (1.0, 10.0)
BATCH_SAVING_RANGE = (0.0, 5.0)
BATCH_CONVERT_RANGE = (0.0, 20.0)


def expected_operator_names() -> List[str]:
    """``Operator.name`` of every ``*Op`` class in the core registry.

    This is the key set a well-formed table's ``operators`` block must
    carry — the CI drift check compares against it, so adding a core
    operator without re-running ``repro calibrate`` fails loudly.
    """
    from ..analysis.forksafety import registry_classes

    return sorted(cls.name for cls in registry_classes())


@dataclass
class CalibrationTable:
    """One machine's measured cost constants and per-operator rates.

    ``operators`` maps every registry ``Operator.name`` to its sweep
    aggregate: total traced ``self_seconds``, total output ``rows``,
    the derived ``us_per_row``, and whether the sweep actually
    instantiated it (``measured`` — unexercised operators carry the
    one-work-unit fallback so the key set always matches the registry).
    """

    version: int = 1
    factor: float = 0.0               #: XMark scale the sweep ran at
    repeats: int = 0                  #: timing repetitions (min taken)
    cpu_count: int = 0
    queries: int = 0                  #: queries swept
    unit_us: float = 1.0              #: measured µs of one work unit
    legacy_join_factor: float = LEGACY_JOIN_FACTOR
    batch_saving_per_row: float = BATCH_SAVING_PER_ROW
    batch_convert_per_row: float = BATCH_CONVERT_PER_ROW
    operators: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "factor": self.factor,
            "repeats": self.repeats,
            "cpu_count": self.cpu_count,
            "queries": self.queries,
            "unit_us": self.unit_us,
            "constants": {
                "legacy_join_factor": self.legacy_join_factor,
                "batch_saving_per_row": self.batch_saving_per_row,
                "batch_convert_per_row": self.batch_convert_per_row,
            },
            "operators": {
                name: dict(entry)
                for name, entry in sorted(self.operators.items())
            },
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationTable":
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise ValueError(
                "not a version-1 calibration table: "
                f"{type(payload).__name__}"
            )
        constants = payload.get("constants", {})
        return cls(
            version=1,
            factor=float(payload.get("factor", 0.0)),
            repeats=int(payload.get("repeats", 0)),
            cpu_count=int(payload.get("cpu_count", 0)),
            queries=int(payload.get("queries", 0)),
            unit_us=float(payload.get("unit_us", 1.0)),
            legacy_join_factor=float(
                constants.get("legacy_join_factor", LEGACY_JOIN_FACTOR)
            ),
            batch_saving_per_row=float(
                constants.get("batch_saving_per_row", BATCH_SAVING_PER_ROW)
            ),
            batch_convert_per_row=float(
                constants.get(
                    "batch_convert_per_row", BATCH_CONVERT_PER_ROW
                )
            ),
            operators={
                str(name): dict(entry)
                for name, entry in payload.get("operators", {}).items()
            },
            note=str(payload.get("note", "")),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CalibrationTable":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def check_table(table: CalibrationTable) -> List[str]:
    """Drift and sanity problems of one table; empty means well-formed.

    The operator key set must equal the core registry (both directions:
    an operator added without recalibrating, or one removed while the
    table still prices it, each produce a problem string), and every
    constant must sit inside its sanity clamp.
    """
    problems: List[str] = []
    expected = set(expected_operator_names())
    present = set(table.operators)
    for name in sorted(expected - present):
        problems.append(f"registry operator {name!r} missing from table")
    for name in sorted(present - expected):
        problems.append(f"table operator {name!r} not in the registry")
    lo, hi = LEGACY_FACTOR_RANGE
    if not (lo <= table.legacy_join_factor <= hi):
        problems.append(
            f"legacy_join_factor {table.legacy_join_factor} outside "
            f"[{lo}, {hi}]"
        )
    lo, hi = BATCH_SAVING_RANGE
    if not (lo <= table.batch_saving_per_row <= hi):
        problems.append(
            f"batch_saving_per_row {table.batch_saving_per_row} outside "
            f"[{lo}, {hi}]"
        )
    lo, hi = BATCH_CONVERT_RANGE
    if not (lo <= table.batch_convert_per_row <= hi):
        problems.append(
            f"batch_convert_per_row {table.batch_convert_per_row} "
            f"outside [{lo}, {hi}]"
        )
    for name, entry in sorted(table.operators.items()):
        if float(entry.get("us_per_row", 0.0)) < 0.0:
            problems.append(f"operator {name!r} has negative us_per_row")
    return problems


# ---------------------------------------------------------------------------
# the active table (what `calibrated` reads)
# ---------------------------------------------------------------------------
_active: Optional[CalibrationTable] = None
_env_checked = False
_state_lock = threading.Lock()


def _check_env() -> None:
    """Load the ``REPRO_CALIBRATION`` table once, on first lookup."""
    global _active, _env_checked
    with _state_lock:
        if _env_checked:
            return
        _env_checked = True
        path = os.environ.get(CALIBRATION_ENV, "").strip()
        if not path:
            return
        try:
            _active = CalibrationTable.load(path)
        except (OSError, ValueError, KeyError, TypeError):
            _active = None  # a broken table must not break planning


def active() -> Optional[CalibrationTable]:
    """The calibration table currently in force, if any."""
    if not _env_checked:
        _check_env()
    return _active


def set_calibration(
    table: Optional[CalibrationTable],
) -> Optional[CalibrationTable]:
    """Install (or clear, with None) the active table; returns previous."""
    global _active, _env_checked
    from ..telemetry.hooks import instrument

    with _state_lock:
        _env_checked = True  # an explicit set overrides the env toggle
        previous = _active
        _active = table
    instrument("calibration.loaded", 1.0 if table is not None else 0.0)
    return previous


@contextmanager
def use_calibration(
    table: Optional[CalibrationTable],
) -> Iterator[Optional[CalibrationTable]]:
    """Scoped table install (tests and ``explain --calibration``)."""
    previous = set_calibration(table)
    try:
        yield table
    finally:
        set_calibration(previous)


def calibrated(name: str) -> float:
    """The effective value of one tunable cost constant.

    ``name`` is one of :data:`DEFAULT_CONSTANTS`; the active table's
    measured value wins, the hand-fit default otherwise.  This is the
    single indirection the planner and the feedback re-coster read —
    the constants in :mod:`repro.planner.cost` stay untouched defaults.
    """
    default = DEFAULT_CONSTANTS[name]  # KeyError on typos, on purpose
    table = active()
    if table is None:
        return default
    return float(getattr(table, name))


# ---------------------------------------------------------------------------
# the measurement (`repro calibrate`)
# ---------------------------------------------------------------------------
def _clamp(value: float, bounds: "tuple[float, float]") -> float:
    lo, hi = bounds
    return min(max(value, lo), hi)


def _least_squares_2(
    xs: List["tuple[float, float]"], ys: List[float]
) -> Optional["tuple[float, float]"]:
    """Solve ``y ~= a*x0 + b*x1`` by normal equations; None if singular."""
    s00 = s01 = s11 = t0 = t1 = 0.0
    for (x0, x1), y in zip(xs, ys):
        s00 += x0 * x0
        s01 += x0 * x1
        s11 += x1 * x1
        t0 += x0 * y
        t1 += x1 * y
    det = s00 * s11 - s01 * s01
    if abs(det) < 1e-9:
        return None
    a = (t0 * s11 - t1 * s01) / det
    b = (t1 * s00 - t0 * s01) / det
    return a, b


def run_calibration(
    factor: float = 0.05,
    repeats: int = 3,
    queries: Optional[List[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CalibrationTable:
    """Run the traced sweep and distil a :class:`CalibrationTable`.

    Per query (the Figure 15 set by default) and per rewrite setting
    (off *and* on, so Shadow/Illuminate get exercised), the plan is
    evaluated ``repeats`` times under the tracer — per-tree, fast path
    on — and the fastest run's per-operator self times and output rows
    accumulate into the operator table.  The same plans are then timed
    with the fast path off (the legacy factor) and with the batch
    runtime on vs off (the batch least squares).  Telemetry hooks are
    suppressed throughout: a calibration run must not pollute registry
    totals.
    """
    from ..columns.batch import use_batch
    from ..core.base import Context
    from ..core.evaluator import evaluate
    from ..engine import Engine
    from ..physical.structural_join import use_fast_path
    from ..telemetry import hooks as telemetry
    from ..trace import Tracer
    from ..xmark.generator import load_xmark
    from ..xmark.queries import FIGURE15_ORDER, QUERIES
    from .cost import CostModel
    from .planner import currency_flow
    from .cost import post_order
    import time

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    names = list(queries or FIGURE15_ORDER)
    say(f"loading XMark factor {factor:g} ...")
    engine = Engine()
    load_xmark(engine.db, factor)
    stats = engine.cardinality_stats()
    model = CostModel(stats)

    op_seconds: Dict[str, float] = {}
    op_rows: Dict[str, float] = {}
    fast_join_seconds = 0.0
    legacy_join_seconds = 0.0
    modeled_work = 0.0
    measured_seconds = 0.0
    flows: List["tuple[float, float]"] = []
    deltas_us: List[float] = []

    def run_once(plan: Any, tracer_on: bool) -> "tuple[float, Any]":
        ctx = Context(engine.db, scan_cache=True)
        if tracer_on:
            tracer = Tracer(ctx.metrics)
            started = time.perf_counter()
            evaluate(plan, ctx, tracer)
            elapsed = time.perf_counter() - started
            return elapsed, tracer.finish(plan)
        started = time.perf_counter()
        evaluate(plan, ctx)
        return time.perf_counter() - started, None

    def best_traced(plan: Any) -> Any:
        best_elapsed, best_trace = run_once(plan, True)
        for _ in range(max(repeats - 1, 0)):
            elapsed, trace = run_once(plan, True)
            if elapsed < best_elapsed:
                best_elapsed, best_trace = elapsed, trace
        return best_trace

    def best_plain(plan: Any) -> float:
        best_elapsed = run_once(plan, False)[0]
        for _ in range(max(repeats - 1, 0)):
            best_elapsed = min(best_elapsed, run_once(plan, False)[0])
        return best_elapsed

    join_names = ("Select", "Join")
    with telemetry.disabled():
        for position, name in enumerate(names, start=1):
            text = QUERIES[name].text
            say(f"[{position}/{len(names)}] {name}")
            for optimize in (False, True):
                plan = engine.plan(
                    text, "tlc", optimize, planner=False
                ).plan
                with use_batch(False), use_fast_path(True):
                    trace = best_traced(plan)
                for record in trace.records:
                    op_seconds[record.name] = (
                        op_seconds.get(record.name, 0.0)
                        + record.self_seconds
                    )
                    op_rows[record.name] = (
                        op_rows.get(record.name, 0.0) + record.output_card
                    )
                measured_seconds += trace.total_self_seconds()
                ops = post_order(plan)
                rows = model.plan_rows(plan)
                modeled_work += sum(model.op_cost(op, rows) for op in ops)
                fast_join_seconds += sum(
                    r.self_seconds
                    for r in trace.records
                    if r.name in join_names
                )
                with use_batch(False), use_fast_path(False):
                    legacy_trace = best_traced(plan)
                legacy_join_seconds += sum(
                    r.self_seconds
                    for r in legacy_trace.records
                    if r.name in join_names
                )
                if not optimize:
                    # the batch delta only needs one rewrite setting;
                    # flows come from the same estimates the planner
                    # prices with, so the fitted constants share units
                    with use_fast_path(True):
                        with use_batch(False):
                            tree_seconds = best_plain(plan)
                        with use_batch(True):
                            batch_seconds = best_plain(plan)
                    _, _, columnar_rows, boundary_rows = currency_flow(
                        ops, rows
                    )
                    if columnar_rows > 0 or boundary_rows > 0:
                        flows.append((columnar_rows, boundary_rows))
                        deltas_us.append(
                            (tree_seconds - batch_seconds) * 1e6
                        )

    # µs of one abstract work unit: measured sweep time over modeled work
    unit_us = 1.0
    if modeled_work > 0 and measured_seconds > 0:
        unit_us = measured_seconds * 1e6 / modeled_work

    legacy_factor = DEFAULT_CONSTANTS["legacy_join_factor"]
    if fast_join_seconds > 0 and legacy_join_seconds > 0:
        legacy_factor = _clamp(
            legacy_join_seconds / fast_join_seconds, LEGACY_FACTOR_RANGE
        )

    saving = DEFAULT_CONSTANTS["batch_saving_per_row"]
    convert = DEFAULT_CONSTANTS["batch_convert_per_row"]
    fit = _least_squares_2(flows, deltas_us) if len(flows) >= 3 else None
    if fit is not None and unit_us > 0:
        saving_us, neg_convert_us = fit
        fitted_saving = saving_us / unit_us
        fitted_convert = -neg_convert_us / unit_us
        # a degenerate fit (non-positive saving: batch did not win on
        # this machine's sweep) keeps the hand-fit defaults
        if fitted_saving > 0:
            saving = _clamp(fitted_saving, BATCH_SAVING_RANGE)
            convert = _clamp(max(fitted_convert, 0.0), BATCH_CONVERT_RANGE)

    operators: Dict[str, Dict[str, Any]] = {}
    for name in expected_operator_names():
        seconds = op_seconds.get(name, 0.0)
        rows_total = op_rows.get(name, 0.0)
        measured = name in op_seconds
        if rows_total > 0:
            us_per_row = seconds * 1e6 / rows_total
        else:
            us_per_row = unit_us  # one work unit: the neutral fallback
        operators[name] = {
            "self_seconds": round(seconds, 6),
            "rows": int(rows_total),
            "us_per_row": round(us_per_row, 4),
            "measured": measured,
        }

    return CalibrationTable(
        factor=factor,
        repeats=repeats,
        cpu_count=os.cpu_count() or 1,
        queries=len(names),
        unit_us=round(unit_us, 4),
        legacy_join_factor=round(legacy_factor, 4),
        batch_saving_per_row=round(saving, 4),
        batch_convert_per_row=round(convert, 4),
        operators=operators,
        note=(
            "measured by `repro calibrate`; constants feed "
            "planner lookups via repro.planner.calibration.calibrated"
        ),
    )
