"""The telemetry feedback loop: observed cardinalities correct the model.

The static cost model guesses (predicate selectivity, unbounded
intervals, unloaded documents).  The runtime tracer *measures*: every
slow-query capture carries each operator's actual output cardinality.
This module closes the loop:

1. :func:`observed_from_trace` lifts a ``trace_to_json`` payload into an
   ``{operator post-order index: output cardinality}`` map — the exact
   shape :class:`~repro.planner.cost.CostModel` accepts as overrides
   (the tracer and :func:`~repro.planner.cost.post_order` assign indexes
   identically, so alignment is positional and total).
2. :func:`recost` re-costs a prepared plan under the corrected model and
   compares its *current annotated shape* against the shape the planner
   would pick knowing the observed row counts.
3. When a cheaper shape exists, the service bumps the plan out of the
   prepared-plan LRU (``PlanCache.invalidate``) and parks the observed
   map in a :class:`FeedbackStore`; the recompile that serves the next
   request plans with the overrides and adopts the cheaper shape.

A uniform miss (every estimate off by the same factor) scales every
alternative's cost equally and flips nothing — by design.  The loop
fires on *differential* misses: a join that produced far fewer (or more)
rows than its interval bound, which moves the batch-vs-tree break-even,
or statistics that were unknown at plan time (document loaded after the
plan was cached).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.base import Operator
from ..core.select import SelectOp
from ..patterns.apt import APTNode
from ..storage.stats import CardinalityStats
from .calibration import calibrated
from .choice import PlanDecision
from .cost import CostModel, post_order
from .planner import DECISION_MARGIN, currency_flow, plan_physical

#: Fractional cost advantage the planner-best shape must show over the
#: cached shape before the feedback loop evicts a prepared plan.  Wider
#: than :data:`~repro.planner.planner.DECISION_MARGIN` because an
#: eviction forces a recompile on the next request — flapping between
#: two near-equal shapes would cost more than either shape saves.
RECOST_MARGIN = 0.10

#: Observed-cardinality maps kept for recompiles (bounded, LRU).
FEEDBACK_CAPACITY = 128


def observed_from_trace(payload: Dict[str, Any]) -> Dict[int, int]:
    """Tracer payload -> ``{post-order op index: measured output rows}``.

    Accepts the ``trace_to_json`` schema (version 1); unknown versions
    return an empty map rather than guessing at alignment.
    """
    if not payload or payload.get("version") != 1:
        return {}
    return {
        int(record["index"]): int(record["output_card"])
        for record in payload.get("records", ())
    }


@dataclass
class RecostResult:
    """Outcome of re-costing one cached plan against observations."""

    current_cost: float       #: cached shape, observed-calibrated model
    best_cost: float          #: planner-best shape, same model
    currency_flip: bool       #: batch<->tree decision changed
    engine_flip: bool         #: fast<->legacy decision changed
    reorder_flips: int        #: pattern nodes whose best order changed
    changed: bool             #: cheaper shape exists beyond the margin
    decision: PlanDecision    #: the shape the planner would pick now
    reason: str = ""

    @property
    def improvement(self) -> float:
        """Fractional saving of the best shape over the current one."""
        if self.current_cost <= 0:
            return 0.0
        return 1.0 - self.best_cost / self.current_cost


def _annotated_order(node: APTNode) -> List[int]:
    order = getattr(node, "planner_order", None)
    if order is not None:
        return list(order)
    return list(range(len(node.edges)))


def _select_cost(
    model: CostModel,
    node: APTNode,
    doc: Optional[str],
    choose: Callable[[APTNode, Any], List[int]],
) -> float:
    """Recursive pattern cost with per-node order chosen by ``choose``."""
    estimate = model.estimate_pattern(node, doc)
    total = model.order_cost(estimate, choose(node, estimate))
    for edge in node.edges:
        total += _select_cost(model, edge.child, doc, choose)
    return total


def shape_cost(
    plan: Operator,
    model: CostModel,
    currency: str,
    annotated: bool,
) -> float:
    """Whole-plan work estimate for one physical shape.

    ``annotated=True`` costs the shape the plan currently carries (the
    ``planner_order`` annotations, or source order where absent);
    ``annotated=False`` costs the planner-best orders.  ``currency``
    adds the batch saving/conversion balance when "batch".  The engine
    dimension is omitted: the planner never chooses the legacy engine,
    so both sides of every comparison share the fast-path join cost.
    """

    def choose(node: APTNode, estimate: Any) -> List[int]:
        if annotated:
            return _annotated_order(node)
        best, best_cost = model.best_order(estimate)
        source = list(range(len(node.edges)))
        source_cost = model.order_cost(estimate, source)
        if best_cost < source_cost * (1.0 - DECISION_MARGIN):
            return best
        return source

    ops = post_order(plan)
    rows = model.plan_rows(plan)
    total = 0.0
    for op in ops:
        if isinstance(op, SelectOp) and not op.inputs:
            total += _select_cost(model, op.apt.root, op.apt.doc, choose)
        else:
            total += rows[id(op)] + sum(
                rows[id(child)] for child in op.inputs
            )
    if currency == "batch":
        _, _, columnar_rows, boundary_rows = currency_flow(ops, rows)
        total += (
            calibrated("batch_convert_per_row") * boundary_rows
            - calibrated("batch_saving_per_row") * columnar_rows
        )
    return total


def recost(
    plan: Operator,
    stats: CardinalityStats,
    observed: Dict[int, int],
    margin: float = RECOST_MARGIN,
) -> RecostResult:
    """Re-cost ``plan`` under observed cardinalities; report the verdict.

    Pure: the plan is never mutated (the fresh decision is computed with
    ``apply=False``).  ``changed`` is True only when the planner-best
    shape *differs* from the annotated one — a different currency,
    engine, or at least one different edge order — *and* its cost beats
    the annotated shape by more than ``margin``.
    """
    model = CostModel(stats, observed=observed)
    fresh = plan_physical(plan, stats, observed=observed, apply=False)
    current_currency = getattr(plan, "exec_currency", None) or "tree"
    current_engine = getattr(plan, "exec_engine", None) or "fast"
    currency_flip = fresh.currency != current_currency
    engine_flip = fresh.engine != current_engine

    reorder_flips = 0
    for op in post_order(plan):
        if not (isinstance(op, SelectOp)):
            continue
        for node in op.apt.root.walk():
            if len(node.edges) < 2:
                continue
            estimate = model.estimate_pattern(node, op.apt.doc)
            best, best_cost = model.best_order(estimate)
            source = list(range(len(node.edges)))
            source_cost = model.order_cost(estimate, source)
            wants = (
                best
                if best_cost < source_cost * (1.0 - DECISION_MARGIN)
                else source
            )
            if wants != _annotated_order(node):
                reorder_flips += 1

    current_cost = shape_cost(
        plan, model, currency=current_currency, annotated=True
    )
    best_cost = shape_cost(
        plan, model, currency=fresh.currency, annotated=False
    )
    differs = currency_flip or engine_flip or reorder_flips > 0
    cheaper = best_cost < current_cost * (1.0 - margin)
    changed = differs and cheaper
    if changed:
        parts = []
        if currency_flip:
            parts.append(
                f"currency {current_currency}->{fresh.currency}"
            )
        if engine_flip:
            parts.append(f"engine {current_engine}->{fresh.engine}")
        if reorder_flips:
            parts.append(f"{reorder_flips} join-order flip(s)")
        reason = (
            f"observed cardinalities favour {', '.join(parts)}: "
            f"{best_cost:,.0f} vs {current_cost:,.0f} work units"
        )
    elif differs:
        reason = (
            "a different shape exists but saves less than "
            f"{margin:.0%} — keeping the cached plan"
        )
    else:
        reason = "the cached shape is what the planner would pick now"
    return RecostResult(
        current_cost=current_cost,
        best_cost=best_cost,
        currency_flip=currency_flip,
        engine_flip=engine_flip,
        reorder_flips=reorder_flips,
        changed=changed,
        decision=fresh,
        reason=reason,
    )


class FeedbackStore:
    """Observed-cardinality maps awaiting the recompile that uses them.

    Keyed by the prepared-plan cache key; bounded LRU so an adversarial
    query stream cannot grow it without limit.  Thread-safe: the service
    records from worker threads and reads from whichever thread compiles
    the replacement plan.
    """

    def __init__(self, capacity: int = FEEDBACK_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("feedback capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Any, Dict[int, int]]" = OrderedDict()

    def remember(self, key: Any, observed: Dict[int, int]) -> None:
        """Park ``observed`` for the next compile of ``key``."""
        with self._lock:
            self._entries[key] = dict(observed)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def overrides_for(self, key: Any) -> Optional[Dict[int, int]]:
        """The observed map for ``key``, or None when none was recorded."""
        with self._lock:
            observed = self._entries.get(key)
            return dict(observed) if observed is not None else None

    def forget(self, key: Any) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- persistence (serve --feedback-file) ---------------------------
    def save(self, path: str) -> int:
        """Write the store as JSON; returns the entry count written.

        Entries whose key is not a
        :class:`~repro.service.cache.PlanCacheKey` (tests park ad-hoc
        keys) are skipped — the file format only promises plan-cache
        keys.  Oldest-first, so a load replays insertion order and the
        LRU ends up in the same recency order it was saved in.
        """
        import json

        from ..service.cache import PlanCacheKey

        with self._lock:
            entries = [
                {
                    "text": key.text,
                    "engine": key.engine,
                    "optimize": key.optimize,
                    "observed": {
                        str(index): card
                        for index, card in observed.items()
                    },
                }
                for key, observed in self._entries.items()
                if isinstance(key, PlanCacheKey)
            ]
        payload = {"version": 1, "entries": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return len(entries)

    def load(self, path: str) -> int:
        """Merge entries from ``path``; returns how many were loaded.

        A missing file is fine (fresh service, nothing observed yet);
        an unknown version or malformed payload loads nothing rather
        than guessing.
        """
        import json
        import os

        from ..service.cache import PlanCacheKey

        if not os.path.exists(path):
            return 0
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return 0
        if not isinstance(payload, dict) or payload.get("version") != 1:
            return 0
        loaded = 0
        for entry in payload.get("entries", ()):
            try:
                key = PlanCacheKey(
                    text=str(entry["text"]),
                    engine=str(entry["engine"]),
                    optimize=bool(entry["optimize"]),
                )
                observed = {
                    int(index): int(card)
                    for index, card in entry["observed"].items()
                }
            except (KeyError, TypeError, ValueError):
                continue
            self.remember(key, observed)
            loaded += 1
        return loaded
