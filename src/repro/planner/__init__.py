"""Cost-based physical planning over index statistics.

The translator fixes the *logical* plan; this package chooses its
*physical* shape: structural-join edge order per pattern node, operator
currency (trees vs columns), and join engine (fast path vs legacy) —
each decision recorded as a chosen-vs-rejected
:class:`~repro.planner.choice.PlanChoice` with cost estimates, and the
whole run rolled up into a :class:`~repro.planner.choice.PlanDecision`
(what ``explain --cost`` and the ``plan`` subcommand render).

The model (:mod:`repro.planner.cost`) is arithmetic over
:class:`~repro.storage.stats.CardinalityStats` and the static
``card [lo, hi]`` bounds; the feedback loop
(:mod:`repro.planner.feedback`) corrects it with cardinalities the
runtime tracer actually measured, evicting cached plans whose shape a
corrected model no longer picks.  Everything is annotation-only — a
planned plan evaluates through the same operators and returns
byte-identical results — and the whole layer sits behind the
``REPRO_PLANNER`` toggle (default off), like the fast-path and batch
runtimes before it.  docs/PLANNING.md is the guided tour.
"""

from .calibration import (
    CALIBRATION_ENV,
    DEFAULT_CALIBRATION_PATH,
    DEFAULT_CONSTANTS,
    CalibrationTable,
    calibrated,
    check_table,
    expected_operator_names,
    run_calibration,
    set_calibration,
    use_calibration,
)
from .calibration import active as active_calibration
from .choice import CHOICE_KINDS, Alternative, PlanChoice, PlanDecision
from .cost import (
    BATCH_CONVERT_PER_ROW,
    BATCH_SAVING_PER_ROW,
    LEGACY_JOIN_FACTOR,
    MAX_EXHAUSTIVE_EDGES,
    PREDICATE_SELECTIVITY,
    TREE_VETO_MARGIN,
    UNKNOWN_COUNT,
    CostModel,
    EdgeEstimate,
    PatternEstimate,
    post_order,
)
from .feedback import (
    FEEDBACK_CAPACITY,
    RECOST_MARGIN,
    FeedbackStore,
    RecostResult,
    observed_from_trace,
    recost,
    shape_cost,
)
from .planner import DECISION_MARGIN, currency_flow, plan_physical
from .toggles import planner_enabled, set_planner, use_planner

__all__ = [
    "Alternative",
    "BATCH_CONVERT_PER_ROW",
    "BATCH_SAVING_PER_ROW",
    "CALIBRATION_ENV",
    "CHOICE_KINDS",
    "CalibrationTable",
    "CostModel",
    "DEFAULT_CALIBRATION_PATH",
    "DEFAULT_CONSTANTS",
    "DECISION_MARGIN",
    "EdgeEstimate",
    "FEEDBACK_CAPACITY",
    "FeedbackStore",
    "LEGACY_JOIN_FACTOR",
    "MAX_EXHAUSTIVE_EDGES",
    "PREDICATE_SELECTIVITY",
    "PatternEstimate",
    "PlanChoice",
    "PlanDecision",
    "RECOST_MARGIN",
    "RecostResult",
    "TREE_VETO_MARGIN",
    "UNKNOWN_COUNT",
    "active_calibration",
    "calibrated",
    "check_table",
    "currency_flow",
    "expected_operator_names",
    "observed_from_trace",
    "plan_physical",
    "planner_enabled",
    "post_order",
    "recost",
    "run_calibration",
    "set_calibration",
    "set_planner",
    "shape_cost",
    "use_calibration",
    "use_planner",
]
