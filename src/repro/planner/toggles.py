"""The planner's process-wide switch (mirrors ``_FAST_PATH``/``_BATCH``).

Off by default: plan shape stays exactly what the translator emitted,
which is the configuration every committed baseline was measured under.
Switch it on per call (``Engine.run(..., planner=True)``), per scope
(:func:`use_planner`), per process (``REPRO_PLANNER=1``), or per service
(``QueryService(planner=True)``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Module switch for cost-based physical planning (mirrors _FAST_PATH).
_PLANNER = os.environ.get("REPRO_PLANNER", "").strip().lower() in (
    "1", "true", "yes", "on"
)


def planner_enabled() -> bool:
    """Whether queries are cost-planned before execution by default."""
    return _PLANNER


def set_planner(enabled: bool) -> bool:
    """Switch the planner on or off; returns the previous setting."""
    global _PLANNER
    previous = _PLANNER
    _PLANNER = bool(enabled)
    return previous


@contextmanager
def use_planner(enabled: bool = True) -> Iterator[None]:
    """Scoped :func:`set_planner` (equivalence sweeps, benchmarks)."""
    previous = set_planner(enabled)
    try:
        yield
    finally:
        set_planner(previous)
