#!/usr/bin/env python3
"""End-to-end telemetry smoke test: serve --http, scrape, validate.

Starts ``python -m repro serve xmark:0.002 --http 0 --slow-ms 0`` as a
subprocess, keeps its stdin pipe open while scraping the announced
endpoints, then feeds it queries and checks that:

* ``/healthz`` answers ``{"status": "ok"}``;
* ``/metrics`` is valid Prometheus exposition text (``promformat``)
  and counts the served requests;
* ``/stats`` reports the executions with latency percentiles;
* ``/slow`` holds a capture with a per-operator trace (every request
  is slow at ``--slow-ms 0``).

Run from the repo root: ``python tools/telemetry_smoke.py``.  Exit 0
on success; failures print a reason and exit 1.  Stdlib only.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "tools"))

from promformat import parse_exposition  # noqa: E402

QUERIES = [
    'FOR $p IN document("auction.xml")//person RETURN $p/name',
    'FOR $i IN document("auction.xml")//item RETURN $i/location',
]


def _get(base: str, path: str) -> bytes:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.read()


def main() -> int:
    env_path = str(REPO / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "xmark:0.002",
            "--http", "0", "--slow-ms", "0",
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(REPO),
    )
    try:
        assert proc.stderr is not None and proc.stdin is not None
        line = proc.stderr.readline()
        match = re.search(r"http://[\d.]+:\d+", line)
        if not match:
            print(f"smoke: no telemetry address in {line!r}")
            return 1
        base = match.group(0)
        print(f"smoke: serve announced {base}")

        health = json.loads(_get(base, "/healthz"))
        if health.get("status") != "ok":
            print(f"smoke: /healthz not ok: {health}")
            return 1

        for query in QUERIES:
            proc.stdin.write(query + "\n")
        proc.stdin.flush()

        # poll /stats until both requests are in
        for _ in range(100):
            stats = json.loads(_get(base, "/stats"))
            if stats["service"]["executed"] >= len(QUERIES):
                break
            time.sleep(0.1)
        else:
            print(f"smoke: requests never landed: {stats['service']}")
            return 1
        latency = stats["service"]["latency"].get("all", {})
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            if key not in latency:
                print(f"smoke: /stats latency misses {key}: {latency}")
                return 1

        text = _get(base, "/metrics").decode("utf-8")
        families = parse_exposition(text)
        for required in (
            "repro_requests_total",
            "repro_request_seconds",
            "repro_plan_executions_total",
            "repro_slow_queries_total",
        ):
            if required not in families:
                print(f"smoke: /metrics misses family {required}")
                return 1
        requests_total = sum(
            value
            for _, _, value in families["repro_requests_total"].samples
        )
        if requests_total < len(QUERIES):
            print(f"smoke: repro_requests_total={requests_total} < 2")
            return 1

        slow = json.loads(_get(base, "/slow"))
        if slow["captured"] < len(QUERIES):
            print(f"smoke: slow ring captured {slow['captured']} < 2")
            return 1
        if not any(entry.get("trace") for entry in slow["slow"]):
            print("smoke: no slow capture carries a trace")
            return 1

        proc.stdin.close()
        if proc.wait(timeout=60) != 0:
            print(f"smoke: serve exited {proc.returncode}")
            print(proc.stderr.read(), file=sys.stderr)
            return 1
        print(
            f"smoke: OK ({len(families)} metric families, "
            f"{int(requests_total)} requests, "
            f"{slow['captured']} slow captures)"
        )
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
