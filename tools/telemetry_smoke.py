#!/usr/bin/env python3
"""End-to-end telemetry smoke test: serve --http, scrape, validate.

Starts ``python -m repro serve xmark:0.002 --http 0 --slow-ms 0
--spans --mode process --workers 2 --query-log <tmp>`` as a
subprocess, keeps its stdin pipe open while scraping the announced
endpoints, then feeds it queries and checks that:

* ``/healthz`` answers ``{"status": "ok"}``;
* ``/metrics`` is valid Prometheus exposition text (``promformat``)
  and counts the served requests;
* ``/stats`` reports the executions with latency percentiles;
* ``/slow`` holds a capture with a per-operator trace (every request
  is slow at ``--slow-ms 0``);
* ``/trace`` lists one span capture per request, ``/trace/<id>``
  round-trips as Chrome-trace-event JSON that passes the schema
  checker (non-decreasing ``ts``, matched ``B``/``E`` pairs) and
  carries worker-side spans;
* ``/workers`` reports both worker processes with their served
  request counts;
* every query-log JSONL record's ``trace_id`` joins against a
  resident ``/trace`` capture.

Run from the repo root: ``python tools/telemetry_smoke.py``.  Exit 0
on success; failures print a reason and exit 1.  Stdlib plus the
in-repo ``repro.telemetry.spans`` checker only.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "tools"))
sys.path.insert(0, str(REPO / "src"))

from promformat import parse_exposition  # noqa: E402

from repro.telemetry.spans import check_chrome_trace  # noqa: E402

QUERIES = [
    'FOR $p IN document("auction.xml")//person RETURN $p/name',
    'FOR $i IN document("auction.xml")//item RETURN $i/location',
]


def _get(base: str, path: str) -> bytes:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.read()


def main() -> int:
    env_path = str(REPO / "src")
    import os
    import tempfile

    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + os.pathsep + env.get("PYTHONPATH", "")
    query_log = Path(tempfile.mkstemp(suffix=".jsonl")[1])
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "xmark:0.002",
            "--http", "0", "--slow-ms", "0",
            "--spans", "--mode", "process", "--workers", "2",
            "--query-log", str(query_log),
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(REPO),
    )
    try:
        assert proc.stderr is not None and proc.stdin is not None
        # --mode process announces the worker fleet first; scan stderr
        # lines until the telemetry address shows up
        match = None
        for _ in range(10):
            line = proc.stderr.readline()
            if not line:
                break
            match = re.search(r"http://[\d.]+:\d+", line)
            if match:
                break
        if not match:
            print(f"smoke: no telemetry address in {line!r}")
            return 1
        base = match.group(0)
        print(f"smoke: serve announced {base}")

        health = json.loads(_get(base, "/healthz"))
        if health.get("status") != "ok":
            print(f"smoke: /healthz not ok: {health}")
            return 1

        for query in QUERIES:
            proc.stdin.write(query + "\n")
        proc.stdin.flush()

        # poll /stats until both requests are in
        for _ in range(100):
            stats = json.loads(_get(base, "/stats"))
            if stats["service"]["executed"] >= len(QUERIES):
                break
            time.sleep(0.1)
        else:
            print(f"smoke: requests never landed: {stats['service']}")
            return 1
        latency = stats["service"]["latency"].get("all", {})
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            if key not in latency:
                print(f"smoke: /stats latency misses {key}: {latency}")
                return 1

        text = _get(base, "/metrics").decode("utf-8")
        families = parse_exposition(text)
        for required in (
            "repro_requests_total",
            "repro_request_seconds",
            "repro_plan_executions_total",
            "repro_slow_queries_total",
        ):
            if required not in families:
                print(f"smoke: /metrics misses family {required}")
                return 1
        requests_total = sum(
            value
            for _, _, value in families["repro_requests_total"].samples
        )
        if requests_total < len(QUERIES):
            print(f"smoke: repro_requests_total={requests_total} < 2")
            return 1

        slow = json.loads(_get(base, "/slow"))
        if slow["captured"] < len(QUERIES):
            print(f"smoke: slow ring captured {slow['captured']} < 2")
            return 1
        if not any(entry.get("trace") for entry in slow["slow"]):
            print("smoke: no slow capture carries a trace")
            return 1

        # span captures: /trace index, per-id Chrome round-trip
        index = json.loads(_get(base, "/trace"))
        if not index.get("spans_enabled"):
            print(f"smoke: /trace reports spans disabled: {index}")
            return 1
        traces = index.get("traces", [])
        if len(traces) < len(QUERIES):
            print(f"smoke: /trace holds {len(traces)} captures < 2")
            return 1
        for entry in traces:
            chrome = json.loads(_get(base, f"/trace/{entry['trace_id']}"))
            problems = check_chrome_trace(chrome)
            if problems:
                print(
                    f"smoke: /trace/{entry['trace_id']} export is "
                    f"malformed: {problems}"
                )
                return 1
            names = {
                event.get("name")
                for event in chrome["traceEvents"]
                if event.get("ph") == "B"
            }
            if "worker.execute" not in names:
                print(
                    f"smoke: trace {entry['trace_id']} never crossed "
                    f"the worker boundary: {sorted(names)}"
                )
                return 1

        # worker introspection
        workers = json.loads(_get(base, "/workers"))
        if workers.get("mode") != "process":
            print(f"smoke: /workers mode {workers.get('mode')!r}")
            return 1
        fleet = workers.get("workers", [])
        if len(fleet) != 2:
            print(f"smoke: /workers lists {len(fleet)} workers != 2")
            return 1
        served = sum(entry.get("requests", 0) for entry in fleet)
        if served < len(QUERIES):
            print(f"smoke: workers served {served} < {len(QUERIES)}")
            return 1
        if "repro_worker_requests" not in families and not any(
            f.startswith("repro_worker_requests")
            for f in parse_exposition(_get(base, "/metrics").decode())
        ):
            print("smoke: /metrics misses repro_worker_requests")
            return 1

        proc.stdin.close()
        if proc.wait(timeout=60) != 0:
            print(f"smoke: serve exited {proc.returncode}")
            print(proc.stderr.read(), file=sys.stderr)
            return 1

        # the query log joins against the exported span captures
        resident = {entry["trace_id"] for entry in traces}
        events = [
            json.loads(line)
            for line in query_log.read_text().splitlines()
            if line.strip()
        ]
        if len(events) < len(QUERIES):
            print(f"smoke: query log holds {len(events)} records < 2")
            return 1
        unjoined = [
            event["trace_id"]
            for event in events
            if event.get("trace_id") not in resident
        ]
        if unjoined:
            print(f"smoke: log trace_ids not in /trace: {unjoined}")
            return 1

        print(
            f"smoke: OK ({len(families)} metric families, "
            f"{int(requests_total)} requests, "
            f"{slow['captured']} slow captures, {len(traces)} span "
            f"captures joined to {len(events)} log records, "
            f"{served} requests across {len(fleet)} workers)"
        )
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
        query_log.unlink(missing_ok=True)


if __name__ == "__main__":
    sys.exit(main())
