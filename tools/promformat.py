#!/usr/bin/env python3
"""Prometheus text-exposition (0.0.4) parser and validator, stdlib only.

CI's telemetry smoke job pipes the output of ``GET /metrics`` through
this tool to prove the endpoint emits well-formed exposition text;
``tests/telemetry`` uses :func:`parse_exposition` directly for the same
checks in-process.  Validated invariants:

* every sample line parses as ``name[{labels}] value`` and its value is
  a float (``+Inf`` / ``-Inf`` / ``NaN`` included);
* every sample belongs to a family declared by a preceding ``# TYPE``
  line (histogram families own their ``_bucket``/``_sum``/``_count``
  series);
* counter samples are non-negative;
* histogram ``le`` buckets are cumulative (non-decreasing), end with a
  ``+Inf`` bucket, and that bucket equals the family's ``_count``.

Exit status: 0 when the input validates, 1 otherwise (the reason is
printed to stderr).
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class Family:
    """One metric family: its type, help text and parsed samples."""

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        self.name = name
        self.kind = kind
        self.help = help
        #: (sample name, {label: value}, float value) per sample line
        self.samples: List[Tuple[str, Dict[str, str], float]] = []


def _parse_value(text: str) -> float:
    mapped = {"+Inf": "inf", "-Inf": "-inf", "NaN": "nan"}.get(text, text)
    try:
        return float(mapped)
    except ValueError:
        raise ValueError(f"unparseable sample value {text!r}") from None


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    consumed = 0
    for match in _LABEL.finditer(text):
        labels[match.group(1)] = (
            match.group(2)
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\\\\", "\\")
        )
        consumed = match.end()
        if consumed < len(text) and text[consumed] == ",":
            consumed += 1
    if consumed != len(text):
        raise ValueError(f"unparseable label block {{{text}}}")
    return labels


def _family_for(name: str, families: Dict[str, Family]) -> Optional[Family]:
    if name in families:
        return families[name]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = families.get(name[: -len(suffix)])
            if base is not None and base.kind in ("histogram", "summary"):
                return base
    return None


def parse_exposition(text: str) -> Dict[str, Family]:
    """Parse and validate exposition text; raises ValueError on errors."""
    families: Dict[str, Family] = {}
    helps: Dict[str, str] = {}
    for number, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        try:
            if line.startswith("# HELP "):
                parts = line[len("# HELP ") :].split(" ", 1)
                helps[parts[0]] = parts[1] if len(parts) > 1 else ""
            elif line.startswith("# TYPE "):
                parts = line[len("# TYPE ") :].split(" ", 1)
                if len(parts) != 2 or parts[1] not in TYPES:
                    raise ValueError(f"bad TYPE line {line!r}")
                name = parts[0]
                if not _METRIC_NAME.match(name):
                    raise ValueError(f"bad metric name {name!r}")
                if name in families:
                    raise ValueError(f"duplicate TYPE for {name}")
                families[name] = Family(
                    name, parts[1], helps.get(name, "")
                )
            elif line.startswith("#"):
                continue  # plain comment
            else:
                match = _SAMPLE.match(line)
                if match is None:
                    raise ValueError(f"unparseable sample line {line!r}")
                name = match.group("name")
                family = _family_for(name, families)
                if family is None:
                    raise ValueError(
                        f"sample {name!r} has no preceding # TYPE"
                    )
                value = _parse_value(match.group("value"))
                labels = _parse_labels(match.group("labels"))
                if family.kind == "counter" and value < 0:
                    raise ValueError(f"negative counter {name}={value}")
                family.samples.append((name, labels, value))
        except ValueError as error:
            raise ValueError(f"line {number}: {error}") from None
    for family in families.values():
        if family.kind == "histogram":
            _check_histogram(family)
    return families


def _check_histogram(family: Family) -> None:
    """Cumulative buckets per label series, +Inf present and == count."""
    series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]]
    series = {}
    counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
    for name, labels, value in family.samples:
        key = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        if name.endswith("_bucket"):
            if "le" not in labels:
                raise ValueError(f"{name} sample without le label")
            series.setdefault(key, []).append(
                (_parse_value(labels["le"]), value)
            )
        elif name.endswith("_count"):
            counts[key] = value
    for key, buckets in series.items():
        previous = 0.0
        for le, cumulative in buckets:
            if cumulative < previous:
                raise ValueError(
                    f"{family.name}: bucket le={le} not cumulative"
                )
            previous = cumulative
        last_le, last_value = buckets[-1]
        if last_le != float("inf"):
            raise ValueError(f"{family.name}: missing +Inf bucket")
        if key in counts and counts[key] != last_value:
            raise ValueError(
                f"{family.name}: +Inf bucket {last_value} != "
                f"_count {counts[key]}"
            )


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args:
        with open(args[0], "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    try:
        families = parse_exposition(text)
    except ValueError as error:
        print(f"promformat: {error}", file=sys.stderr)
        return 1
    samples = sum(len(f.samples) for f in families.values())
    print(f"promformat: OK ({len(families)} families, {samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
