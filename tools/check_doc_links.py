#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation (stdlib only).

Scans the given markdown files (or the repo's standard doc set when run
without arguments) for inline ``[text](target)`` links and verifies that
every *local* target exists relative to the file containing the link.
External links (``http(s)://``, ``mailto:``) are counted but not
fetched — CI must not depend on the network.  Intra-page anchors
(``#section``) are checked against the page's own headings.

Exit status: 0 when every local target resolves, 1 otherwise (broken
links are listed on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: The documentation set checked when no files are given.
DEFAULT_DOCS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/OPERATORS.md",
    "docs/CLI.md",
    "docs/PLANNING.md",
    "docs/OBSERVABILITY.md",
)

#: Inline links, skipping images; code spans are stripped beforehand.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`]*`")
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    """The anchor id GitHub generates for a heading."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file."""
    text = path.read_text(encoding="utf-8")
    prose = _INLINE_CODE.sub("", _CODE_FENCE.sub("", text))
    anchors = {github_anchor(h) for h in _HEADING.findall(text)}
    problems = []
    for target in _LINK.findall(prose):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                problems.append(f"{path}: missing anchor {target!r}")
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r}")
        elif fragment and resolved.suffix == ".md":
            linked = resolved.read_text(encoding="utf-8")
            linked_anchors = {
                github_anchor(h) for h in _HEADING.findall(linked)
            }
            if github_anchor(fragment) not in linked_anchors:
                problems.append(
                    f"{path}: link {target!r} points at a missing anchor"
                )
    return problems


def main(argv: list[str]) -> int:
    files = [Path(arg) for arg in argv] if argv else [
        REPO / name for name in DEFAULT_DOCS
    ]
    problems = []
    checked = 0
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file not found")
            continue
        checked += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {checked} files, {len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
