#!/usr/bin/env python
"""Quickstart: load XML, run XQuery, inspect plans and results.

This walks the public API end to end:

1. build an :class:`~repro.Engine` and load a document,
2. run a FLWOR query (the TLC algebra is the default engine),
3. look at the translated plan (the Figure 7 shape),
4. compare the four evaluation strategies on the same query.
"""

from repro import Engine

AUCTION_XML = """
<site>
  <people>
    <person id="p1"><name>Alice</name><profile><age>34</age></profile></person>
    <person id="p2"><name>Bob</name><profile><age>22</age></profile></person>
    <person id="p3"><name>Carol</name><profile><age>41</age></profile></person>
  </people>
  <open_auctions>
    <open_auction id="a1">
      <initial>15</initial>
      <bidder><personref person="p1"/><increase>4</increase></bidder>
      <bidder><personref person="p3"/><increase>11</increase></bidder>
      <bidder><personref person="p1"/><increase>9</increase></bidder>
      <quantity>2</quantity>
    </open_auction>
    <open_auction id="a2">
      <initial>99</initial>
      <bidder><personref person="p2"/><increase>1</increase></bidder>
      <quantity>1</quantity>
    </open_auction>
  </open_auctions>
</site>
"""

QUERY = '''
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 2 AND $p//age > 25
  AND $p/@id = $o/bidder//@person
RETURN <person name={$p/name/text()}> $o/bidder </person>
'''


def main() -> None:
    engine = Engine()
    engine.load_xml("auction.xml", AUCTION_XML)

    print("=== The query (the paper's running example Q1) ===")
    print(QUERY)

    print("=== The translated TLC plan (compare with Figure 7) ===")
    print(engine.plan(QUERY).explain())
    print()

    print("=== Results ===")
    for tree in engine.run(QUERY):
        print(" ", tree.to_xml())
    print()

    print("=== The same query under all four engines ===")
    for name in ("tlc", "gtp", "tax", "nav"):
        report = engine.measure(QUERY, engine=name, label="Q1")
        print(
            f"  {name:4s} {report.seconds * 1000:8.2f} ms  "
            f"{report.result_trees} trees  "
            f"pages={report.counters['pages_read']} "
            f"nodes={report.counters['nodes_touched']} "
            f"groupbys={report.counters['groupby_ops']} "
            f"navsteps={report.counters['navigation_steps']}"
        )
    print()

    print("=== With the Section 4 rewrites (Shadow + Illuminate) ===")
    report = engine.measure(QUERY, engine="tlc", optimize=True, label="Q1")
    print(
        f"  opt  {report.seconds * 1000:8.2f} ms  "
        f"nodes={report.counters['nodes_touched']}"
    )


if __name__ == "__main__":
    main()
