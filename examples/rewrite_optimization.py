#!/usr/bin/env python
"""The Section 4 rewrites, step by step.

Shows how the optimizer detects redundant pattern-tree work in the plan
for Q1, rewrites it with Shadow / Illuminate (or Flatten), and what the
rewrite buys: the query goes to the database once for the shared
``bidder`` nodes instead of twice.
"""

from repro import Engine
from repro.rewrites import (
    find_flatten_sites,
    find_illuminate_sites,
    apply_flatten,
    apply_illuminate,
    optimize,
)
from repro.xquery import translate_query

Q1 = '''
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 4 AND $p//age > 25
  AND $p/@id = $o/bidder//@person
RETURN <person name={$p/name/text()}> $o/bidder </person>
'''


def main() -> None:
    engine = Engine()
    engine.load_xmark(factor=0.004)

    print("=== Plain TLC plan for Q1 (compare with Figure 7) ===")
    translation = translate_query(Q1)
    print(translation.explain())
    print()

    print("=== Phase 1 detection (Section 4.2) ===")
    plan = translate_query(Q1).plan
    site = find_flatten_sites(plan)[0]
    print(
        f"  Selection on {site.parent.test.tag!r} (class "
        f"{site.parent.lcl}) has the same tag under a "
        f"{site.nested_edge.mspec!r} edge (class "
        f"{site.nested_edge.child.lcl}, feeding the aggregate) and a "
        f"{site.flat_edge.mspec!r} edge (class "
        f"{site.flat_edge.child.lcl}, feeding the join)."
    )
    print(
        "  use[tree(B)] chain above the select: "
        + " -> ".join(type(op).__name__ for op in site.chain)
    )
    print()

    print("=== Phase 2: Shadow + Illuminate (Figures 10 and 12) ===")
    plan = apply_flatten(plan, site, use_shadow=True)
    illuminate_site = find_illuminate_sites(plan)[0]
    plan = apply_illuminate(plan, illuminate_site)
    print(plan.describe())
    print()

    print("=== The optimizer pipeline does all of it in one call ===")
    optimized_plan, log = optimize(translate_query(Q1).plan)
    print(
        f"  shared selects: {log.shared_selects}, "
        f"flatten: {log.flattened}, shadow: {log.shadowed}, "
        f"illuminate: {log.illuminated}"
    )
    print()

    print("=== What it buys ===")
    for label, optimize_flag in (("plain", False), ("OPT", True)):
        report = engine.measure(
            Q1, engine="tlc", optimize=optimize_flag, label="Q1"
        )
        print(
            f"  {label:5s} {report.seconds * 1000:8.2f} ms   "
            f"nodes touched: {report.counters['nodes_touched']:6d}   "
            f"structural joins: "
            f"{report.counters['structural_joins']:3d}"
        )
    print()

    print("=== Results are identical ===")
    plain = sorted(
        t.to_xml() for t in engine.run(Q1, engine="tlc")
    )
    opt = sorted(
        t.to_xml() for t in engine.run(Q1, engine="tlc", optimize=True)
    )
    print(f"  {len(plain)} trees, equal: {plain == opt}")


if __name__ == "__main__":
    main()
