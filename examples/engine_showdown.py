#!/usr/bin/env python
"""Engine showdown: TLC vs GTP vs TAX vs navigation on one workload.

Runs a handful of queries with different "heterogeneity instigators"
(counts, LET bindings, value joins, many return arguments) under all four
evaluation strategies, and prints both the timings and the work counters
that explain them — a miniature, annotated Figure 15.
"""

from repro import Engine
from repro.bench import counters_table
from repro.xmark import QUERIES

SHOWCASE = {
    "x1": "highly selective lookup — everyone is fast, NAV pays full scans",
    "x6": "big count under // — TLC counts in-memory, NAV walks everything",
    "x8": "LET + correlated join + count — grouping starts to hurt TAX/GTP",
    "Q1": "the paper's running example — join + count + clustered return",
    "x10a": "12 return arguments — heavy construction dominates",
}


def main() -> None:
    engine = Engine()
    document = engine.load_xmark(factor=0.003)
    print(f"XMark factor 0.003 loaded ({len(document)} nodes)\n")

    all_reports = []
    for name, why in SHOWCASE.items():
        print(f"--- {name}: {why}")
        rows = []
        for engine_name in ("tlc", "gtp", "tax", "nav"):
            report = engine.measure(
                QUERIES[name].text, engine=engine_name, label=name
            )
            rows.append(report)
            all_reports.append(report)
        base = rows[0].seconds or 1e-9
        for report in rows:
            print(
                f"    {report.engine:4s} {report.seconds * 1000:9.2f} ms"
                f"   ({report.seconds / base:5.1f}x TLC)"
                f"   {report.result_trees} trees"
            )
        print()

    print("Work counters (the mechanics behind the timings):\n")
    print(counters_table(all_reports))
    print(
        "\nReading guide: TAX pays early materialisation (nodes) and "
        "identity joins;\nGTP pays group-bys; NAV pays navigation steps; "
        "TLC pays only the\nstructural joins the pattern needs."
    )


if __name__ == "__main__":
    main()
