#!/usr/bin/env python
"""Differential testing: fuzz queries, cross-check all four engines.

TLC, GTP, TAX and the navigational interpreter are four independent
implementations of the same query semantics, so they double as each
other's oracle.  This example generates random fragment queries with the
schema-aware fuzzer and verifies content-identical results everywhere —
the same harness the integration test suite uses, here as a runnable
tool (`--n` and `--seed` to widen the sweep).

Every fuzzed TLC plan is additionally run through the static LC-flow
analyzer, both as translated and after the Section 4 rewrites: a
translator or rewrite bug that breaks a logical-class invariant fails
the sweep even when all four engines happen to agree on the result.
"""

from __future__ import annotations

import argparse
import sys

from repro import Engine
from repro.rewrites.pipeline import optimize_plan
from repro.xquery.fuzz import QueryFuzzer
from repro.xquery.translator import translate_query


def canonical(sequence) -> list:
    return sorted(repr(t.canonical(True)) for t in sequence)


def lint_both(query: str) -> list:
    """Lint the plan pre- and post-rewrite; returns rendered errors."""
    problems = []
    translation = translate_query(query)
    for stage, result in (
        ("plan", translation),
        ("plan+opt", optimize_plan(translation, verify=False)),
    ):
        report = result.lint()
        for diagnostic in report.diagnostics:
            if diagnostic.is_error:
                problems.append(f"{stage}: {diagnostic.render()}")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=15,
                        help="queries to generate")
    parser.add_argument("--seed", type=int, default=20040613)
    parser.add_argument("--factor", type=float, default=0.002)
    args = parser.parse_args()

    engine = Engine()
    document = engine.load_xmark(factor=args.factor)
    print(
        f"XMark factor {args.factor} ({len(document)} nodes), "
        f"{args.n} fuzzed queries, seed {args.seed}\n"
    )
    fuzzer = QueryFuzzer(seed=args.seed)
    failures = 0
    for number in range(1, args.n + 1):
        query = fuzzer.query()
        lint_errors = lint_both(query)
        if lint_errors:
            failures += 1
            print(f"  [{number:2d}] LINT FAILED")
            for problem in lint_errors:
                print("       ", problem)
        reference = canonical(engine.run(query, engine="tlc"))
        verdicts = []
        for name in ("gtp", "tax", "nav"):
            agrees = canonical(engine.run(query, engine=name)) == reference
            verdicts.append(f"{name}:{'ok' if agrees else 'DIVERGED'}")
            if not agrees:
                failures += 1
        optimized = canonical(
            engine.run(query, engine="tlc", optimize=True)
        )
        verdicts.append(
            f"opt:{'ok' if optimized == reference else 'DIVERGED'}"
        )
        first_line = " ".join(query.split())[:64]
        print(
            f"  [{number:2d}] {len(reference):4d} trees  "
            f"{' '.join(verdicts)}  {first_line}…"
        )
        if "DIVERGED" in " ".join(verdicts):
            print("      query was:")
            for line in query.splitlines():
                print("       ", line)
    print(
        f"\n{args.n} queries × 4 engines + rewrites + lint: "
        f"{'all agree' if failures == 0 else f'{failures} failures!'}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
