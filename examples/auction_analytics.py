#!/usr/bin/env python
"""Auction analytics over synthetic XMark data.

A realistic workload: generate an XMark auction site, then answer the
kind of analytical questions the paper's introduction motivates —
hot auctions, bidder activity, category demographics — each expressed in
the Figure 5 XQuery fragment and evaluated with the TLC algebra.
The example also shows the work counters the storage substrate collects.
"""

from repro import Engine

FACTOR = 0.004  # ~100 persons, ~50 open auctions; scale up freely


def run_and_show(engine: Engine, title: str, query: str,
                 limit: int = 5) -> None:
    print(f"=== {title} ===")
    report = engine.measure(query, label=title)
    result = engine.run(query)
    for tree in list(result)[:limit]:
        print("  ", tree.to_xml())
    if len(result) > limit:
        print(f"   … {len(result) - limit} more")
    print(
        f"   [{report.seconds * 1000:.1f} ms, "
        f"{report.counters['structural_joins']} structural joins, "
        f"{report.counters['pages_read']} page reads]\n"
    )


def main() -> None:
    engine = Engine()
    document = engine.load_xmark(factor=FACTOR)
    print(
        f"Generated XMark factor {FACTOR}: {len(document)} stored nodes\n"
    )

    run_and_show(
        engine,
        "Hot auctions (more than 4 bidders) and their quantities",
        '''
        FOR $o IN document("auction.xml")//open_auction
        WHERE count($o/bidder) > 4
        RETURN <hot id={$o/@id}><q>{$o/quantity/text()}</q></hot>
        ''',
    )

    run_and_show(
        engine,
        "Named bidders on hot auctions (the paper's Q1)",
        '''
        FOR $p IN document("auction.xml")//person
        FOR $o IN document("auction.xml")//open_auction
        WHERE count($o/bidder) > 4 AND $p//age > 25
          AND $p/@id = $o/bidder//@person
        RETURN <person name={$p/name/text()}> $o/bidder </person>
        ''',
        limit=2,
    )

    run_and_show(
        engine,
        "Purchases per person (LET + correlated join + count)",
        '''
        FOR $p IN document("auction.xml")//person
        LET $a := FOR $t IN document("auction.xml")//closed_auction
                  WHERE $t/buyer/@person = $p/@id
                  RETURN <sale>{$t/price/text()}</sale>
        RETURN <buyer name={$p/name/text()}>{count($a)}</buyer>
        ''',
    )

    run_and_show(
        engine,
        "Items by location, sorted (ORDER BY)",
        '''
        FOR $i IN document("auction.xml")//item
        ORDER BY $i/location Ascending
        RETURN <item loc={$i/location/text()}>{$i/name/text()}</item>
        ''',
    )

    run_and_show(
        engine,
        "Auctions where every increase beats 5 (universal quantifier)",
        '''
        FOR $o IN document("auction.xml")//open_auction
        WHERE EVERY $i IN $o/bidder/increase SATISFIES $i > 5
        RETURN <steady id={$o/@id}/>
        ''',
    )

    run_and_show(
        engine,
        "Site statistics (aggregates without touching the data twice)",
        '''
        FOR $s IN document("auction.xml")/site
        RETURN <stats>
          <people>{count($s//person)}</people>
          <open>{count($s//open_auction)}</open>
          <bids>{count($s//bidder)}</bids>
        </stats>
        ''',
    )


if __name__ == "__main__":
    main()
