#!/usr/bin/env python
"""A tiny interactive XQuery shell over an XMark database.

Usage::

    python examples/xquery_repl.py [factor]

Commands inside the shell:

* any FLWOR query (may span lines; finish with an empty line),
* ``:engine tlc|gtp|tax|nav`` — switch evaluation strategy,
* ``:opt on|off``             — toggle the Section 4 rewrites,
* ``:plan``                   — show the plan of the last query,
* ``:bench <name>``           — run a named benchmark query (x1…x20, Q1…),
* ``:quit``.
"""

from __future__ import annotations

import sys

from repro import Engine, ReproError
from repro.xmark import QUERIES


def main() -> None:
    factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    engine = Engine()
    document = engine.load_xmark(factor=factor)
    print(
        f"XMark factor {factor} loaded ({len(document)} nodes) as "
        f'document("auction.xml").  :quit to exit.'
    )
    current_engine = "tlc"
    optimize = False
    last_query = ""

    while True:
        try:
            line = input(f"{current_engine}> ").strip()
        except EOFError:
            break
        if not line:
            continue
        if line == ":quit":
            break
        if line.startswith(":engine"):
            current_engine = line.split()[-1]
            continue
        if line.startswith(":opt"):
            optimize = line.split()[-1] == "on"
            print(f"rewrites {'on' if optimize else 'off'}")
            continue
        if line == ":plan":
            if not last_query:
                print("no previous query")
                continue
            try:
                print(engine.plan(
                    last_query, current_engine, optimize
                ).explain())
            except ReproError as error:
                print(f"error: {error}")
            continue
        if line.startswith(":bench"):
            name = line.split()[-1]
            if name not in QUERIES:
                print(f"unknown query {name!r}")
                continue
            line = QUERIES[name].text
        # multi-line query entry
        buffer = [line]
        while True:
            more = input("   ... ").strip() if not line.startswith(":") else ""
            if not more:
                break
            buffer.append(more)
        last_query = "\n".join(buffer)
        try:
            report = engine.measure(
                last_query, engine=current_engine,
                optimize=optimize, label="repl",
            )
            result = engine.run(
                last_query, engine=current_engine, optimize=optimize
            )
            for tree in list(result)[:20]:
                print("  " + tree.to_xml())
            if len(result) > 20:
                print(f"  … {len(result) - 20} more")
            print(
                f"[{report.result_trees} trees in "
                f"{report.seconds * 1000:.1f} ms]"
            )
        except ReproError as error:
            print(f"error: {error}")


if __name__ == "__main__":
    main()
