"""Unit tests for the Engine facade."""

import pytest

from repro import Engine, ReproError
from tests.conftest import TINY_AUCTION, canonical_sorted

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)


@pytest.fixture
def engine():
    instance = Engine()
    instance.load_xml("auction.xml", TINY_AUCTION)
    return instance


class TestRun:
    def test_default_engine_is_tlc(self, engine):
        result = engine.run(QUERY)
        assert sorted(t.to_xml() for t in result) == [
            "<o>Alice</o>", "<o>Carol</o>",
        ]

    def test_all_engines_accepted(self, engine):
        reference = canonical_sorted(engine.run(QUERY))
        for name in ("tax", "gtp", "nav"):
            assert canonical_sorted(engine.run(QUERY, engine=name)) == (
                reference
            )

    def test_unknown_engine_rejected(self, engine):
        with pytest.raises(ReproError):
            engine.run(QUERY, engine="quantum")

    def test_optimize_flag(self, engine):
        result = engine.run(QUERY, optimize=True)
        assert len(result) == 2

    def test_optimize_rejected_for_baselines(self, engine):
        with pytest.raises(ReproError):
            engine.run(QUERY, engine="gtp", optimize=True)
        with pytest.raises(ReproError):
            engine.run(QUERY, engine="nav", optimize=True)

    def test_run_plan(self, engine):
        translation = engine.plan(QUERY)
        result = engine.run_plan(translation.plan)
        assert len(result) == 2


class TestPlan:
    def test_plan_explain(self, engine):
        text = engine.plan(QUERY).explain()
        assert "Construct" in text
        assert "Select" in text

    def test_plan_for_baselines(self, engine):
        assert engine.plan(QUERY, engine="tax").plan is not None
        assert engine.plan(QUERY, engine="gtp").plan is not None

    def test_nav_has_no_plan(self, engine):
        with pytest.raises(ReproError):
            engine.plan(QUERY, engine="nav")

    def test_var_lcls_exposed(self, engine):
        translation = engine.plan(QUERY)
        assert "p" in translation.var_lcls


class TestEmptyQuery:
    def test_measure_blank_query_raises_repro_error(self, engine):
        # regression: the benchmark label fallback used to hit an
        # IndexError on query.strip().splitlines()[0]
        for blank in ("", "   ", " \n \n\t"):
            with pytest.raises(ReproError, match="empty"):
                engine.measure(blank)

    def test_run_and_plan_reject_blank_query(self, engine):
        for entry in (engine.run, engine.plan):
            with pytest.raises(ReproError, match="empty"):
                entry("  \n ")

    def test_nav_rejects_blank_query(self, engine):
        with pytest.raises(ReproError, match="empty"):
            engine.run("", engine="nav")

    def test_default_label_is_first_nonempty_line(self, engine):
        report = engine.measure("\n\n   \n" + QUERY)
        assert report.query == QUERY


class TestMeasurePlumbing:
    def test_measure_forwards_strict_and_trace(self, engine):
        seen = {}
        original = engine.run

        def spy(query, **kwargs):
            seen.update(kwargs)
            return original(query, **kwargs)

        engine.run = spy
        report = engine.measure(QUERY, strict=True, trace=True)
        assert seen["strict"] is True
        assert seen["trace"] is True
        assert report.trace is not None

    def test_measure_strict_lints_plan(self, engine):
        report = engine.measure(QUERY, strict=True)
        assert report.result_trees == 2

    def test_measure_trace_defaults_off(self, engine):
        seen = {}
        original = engine.run

        def spy(query, **kwargs):
            seen.update(kwargs)
            return original(query, **kwargs)

        engine.run = spy
        engine.measure(QUERY)
        assert seen["strict"] is False and seen["trace"] is False


class TestMeasure:
    def test_report_contents(self, engine):
        report = engine.measure(QUERY, label="demo")
        assert report.query == "demo"
        assert report.engine == "tlc"
        assert report.seconds > 0
        assert report.result_trees == 2
        assert report.counters["pattern_matches"] >= 1

    def test_metrics_reset_between_measurements(self, engine):
        first = engine.measure(QUERY)
        second = engine.measure(QUERY)
        ratio = second.counters["nodes_touched"] / max(
            first.counters["nodes_touched"], 1
        )
        assert 0.5 < ratio < 2.0  # not accumulating

    def test_cold_cache_measurement(self, engine):
        warm = engine.measure(QUERY)
        cold = engine.measure(QUERY, cold_cache=True)
        assert cold.counters["pages_read"] >= warm.counters["pages_read"]

    def test_optimized_label(self, engine):
        report = engine.measure(QUERY, optimize=True)
        assert report.engine == "tlc+opt"

    def test_report_row(self, engine):
        row = engine.measure(QUERY, label="q").row()
        assert row[0] == "q" and row[1] == "tlc"


class TestLoading:
    def test_load_xmark(self):
        engine = Engine()
        document = engine.load_xmark(factor=0.001)
        assert len(document) > 100
        result = engine.run(
            'FOR $p IN document("auction.xml")//person RETURN $p/name'
        )
        assert len(result) > 0

    def test_custom_pool_size(self):
        engine = Engine(pool_pages=8)
        assert engine.db.pool.capacity == 8
