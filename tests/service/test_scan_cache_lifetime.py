"""The ScanCache lifetime contract: one database, one query at a time.

The scan cache memoises candidate lists for a single plan execution
over immutable documents.  Sequential reuse (warm benchmark runs) is
legal; sharing one cache between two concurrent executions — the trap a
service layer could fall into — or moving it to a different database
raises :class:`~repro.errors.ScanCacheLifetimeError` instead of silently
serving another query's scans.
"""

import threading

import pytest

from repro import Engine
from repro.core.base import Context
from repro.core.evaluator import evaluate
from repro.errors import ScanCacheLifetimeError
from repro.patterns.scan_cache import ScanCache
from repro.storage.database import Database
from tests.conftest import TINY_AUCTION

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "RETURN <o>{$p/name/text()}</o>"
)


@pytest.fixture
def engine():
    e = Engine()
    e.load_xml("auction.xml", TINY_AUCTION)
    return e


class TestBracketing:
    def test_concurrent_entry_raises(self):
        cache = ScanCache()
        cache.begin_query(Database())
        with pytest.raises(ScanCacheLifetimeError):
            cache.begin_query(Database())

    def test_sequential_reuse_is_allowed(self):
        cache = ScanCache()
        db = Database()
        for _ in range(3):  # warm benchmark repeats
            cache.begin_query(db)
            cache.end_query()

    def test_database_is_pinned_on_first_use(self):
        cache = ScanCache()
        cache.begin_query(Database())
        cache.end_query()
        with pytest.raises(ScanCacheLifetimeError):
            cache.begin_query(Database())

    def test_clear_unpins_the_database(self):
        cache = ScanCache()
        cache.begin_query(Database())
        cache.end_query()
        cache.clear()
        cache.begin_query(Database())  # fresh cache, fresh pin


class TestEvaluatorEnforcement:
    def test_concurrent_evaluations_sharing_a_cache_raise(self, engine):
        """Two threads running plans over ONE shared cache must trip."""
        plan = engine.plan(QUERY).plan
        shared = ScanCache(metrics=engine.db.metrics)
        inside = threading.Event()
        release = threading.Event()
        errors = []

        # hold one evaluation open by parking an operator mid-plan
        from repro.core.base import Operator

        class ParkOp(Operator):
            name = "Park"

            def execute(self, ctx, inputs):
                inside.set()
                release.wait(timeout=10)
                return inputs[0]

        parked = ParkOp([plan])

        def run_parked():
            ctx = Context(engine.db, scan_cache=False)
            ctx.scan_cache = shared
            try:
                evaluate(parked, ctx)
            except Exception as error:  # noqa: BLE001 - captured for assert
                errors.append(error)

        worker = threading.Thread(target=run_parked)
        worker.start()
        assert inside.wait(timeout=10)
        try:
            ctx = Context(engine.db, scan_cache=False)
            ctx.scan_cache = shared
            with pytest.raises(ScanCacheLifetimeError):
                evaluate(plan, ctx)
        finally:
            release.set()
            worker.join(timeout=10)
        assert not worker.is_alive()
        assert errors == [], "the first evaluation must finish cleanly"

    def test_sequential_warm_reuse_through_the_evaluator(self, engine):
        """The benchmark warm-run pattern stays legal and productive."""
        ctx = Context(engine.db, scan_cache=True)
        plan = engine.plan(QUERY).plan
        first = evaluate(plan, ctx)
        engine.db.reset_metrics()
        second = evaluate(plan, ctx)  # same Context, warm cache
        assert [t.to_xml() for t in first] == [t.to_xml() for t in second]
        assert engine.db.metrics.scan_cache_hits > 0

    def test_cache_pinned_to_its_database(self, engine):
        plan = engine.plan(QUERY).plan
        ctx = Context(engine.db, scan_cache=True)
        evaluate(plan, ctx)
        other = Engine()
        other.load_xml("auction.xml", TINY_AUCTION)
        stray = Context(other.db, scan_cache=False)
        stray.scan_cache = ctx.scan_cache  # the bug the contract catches
        with pytest.raises(ScanCacheLifetimeError):
            evaluate(plan, stray)

    def test_service_requests_never_share(self, engine):
        """QueryService hands every request a fresh cache (spot check)."""
        from repro.service import QueryService

        with QueryService(engine, threads=4) as svc:
            results = svc.execute_many([QUERY] * 12)
        assert len(results) == 12
