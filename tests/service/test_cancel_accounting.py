"""Regression tests: cancelling a *queued* request must be accounted.

A request cancelled while still queued never runs its worker body, so
none of the per-request bookkeeping in ``_run`` fires.  The original
code simply dropped it from the stats — ``executed`` drifted below the
number of submissions.  The fix counts it inside ``cancel()`` itself,
exactly once.
"""

import threading
from concurrent.futures import CancelledError

import pytest

from repro import Engine
from repro.service import QueryService
from tests.conftest import TINY_AUCTION

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)


@pytest.fixture
def engine():
    e = Engine()
    e.load_xml("auction.xml", TINY_AUCTION)
    return e


@pytest.fixture
def saturated(engine, monkeypatch):
    """A 1-worker service whose only worker is parked on a gate."""
    from repro.core.evaluator import evaluate as real_evaluate

    started = threading.Event()
    gate = threading.Event()

    def gated_evaluate(plan, ctx, tracer=None):
        started.set()
        assert gate.wait(timeout=10), "test forgot to open the gate"
        return real_evaluate(plan, ctx, tracer)

    monkeypatch.setattr("repro.service.service.evaluate", gated_evaluate)
    with QueryService(engine, threads=1) as svc:
        blocker = svc.submit(QUERY)
        assert started.wait(timeout=10)
        yield svc, blocker, gate
        gate.set()


def test_queue_cancel_is_counted(saturated):
    svc, blocker, gate = saturated
    victim = svc.submit(QUERY)  # queued behind the parked worker
    assert victim.cancel()
    with pytest.raises(CancelledError):
        victim.result(timeout=10)
    stats = svc.stats()
    assert stats.cancelled == 1
    assert stats.failed == 1
    assert stats.executed == 1, "queue-cancelled request left the books"
    gate.set()
    blocker.result(timeout=10)
    stats = svc.stats()
    assert stats.executed == 2, "executed must equal submissions"
    assert stats.cancelled == 1


def test_double_cancel_counts_once(saturated):
    svc, _blocker, _gate = saturated
    victim = svc.submit(QUERY)
    assert victim.cancel()
    assert victim.cancel(), "cancelled future keeps reporting cancelled"
    assert svc.stats().cancelled == 1


def test_cancel_after_completion_is_not_counted(engine):
    with QueryService(engine, threads=1) as svc:
        handle = svc.submit(QUERY)
        handle.result(timeout=10)
        assert not handle.cancel()
        stats = svc.stats()
        assert stats.cancelled == 0
        assert stats.executed == 1
