"""End-to-end tests for the process-pool execution backend.

Every test that runs real worker processes is parametrized over the
start methods the platform offers, so the fork token handoff and the
digest-verified snapshot handshake are both exercised where available.
"""

import multiprocessing

import pytest

from repro import Engine
from repro.errors import (
    QueryTimeoutError,
    ResourceLimitError,
    ServiceError,
)
from repro.service import (
    SERVICE_MODES,
    START_METHODS,
    QueryService,
    WorkerPool,
    default_start_method,
)
from tests.conftest import TINY_AUCTION

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)
AUCTIONS = (
    'FOR $o IN document("auction.xml")//open_auction '
    "RETURN <i>{$o/initial/text()}</i>"
)

AVAILABLE = [
    m for m in START_METHODS
    if m in multiprocessing.get_all_start_methods()
]


@pytest.fixture
def engine():
    e = Engine()
    e.load_xml("auction.xml", TINY_AUCTION)
    return e


def _xml(result):
    return [tree.to_xml() for tree in result]


@pytest.mark.parametrize("start_method", AVAILABLE)
class TestProcessExecution:
    def test_results_byte_identical_to_serial(self, engine, start_method):
        expected = _xml(engine.run(QUERY))
        with QueryService(
            engine, threads=2, mode="process", start_method=start_method
        ) as svc:
            assert _xml(svc.execute(QUERY)) == expected

    def test_execute_many_preserves_order(self, engine, start_method):
        queries = [QUERY, AUCTIONS] * 3
        expected = [_xml(engine.run(q)) for q in queries]
        with QueryService(
            engine, threads=2, mode="process", start_method=start_method
        ) as svc:
            results = svc.execute_many(queries)
        assert [_xml(r) for r in results] == expected

    def test_prime_starts_the_fleet(self, engine, start_method):
        with QueryService(
            engine, threads=2, mode="process", start_method=start_method
        ) as svc:
            pids = svc.prime(timeout=60)
            assert 1 <= len(pids) <= 2
            assert all(isinstance(pid, int) for pid in pids)
            assert svc.start_method == start_method

    def test_worker_counters_merge_into_dispatcher(
        self, engine, start_method
    ):
        before = engine.db.metrics.snapshot()
        with QueryService(
            engine, threads=2, mode="process", start_method=start_method
        ) as svc:
            svc.execute_many([QUERY] * 3)
            stats = svc.stats()
        delta = engine.db.metrics.diff(before)
        assert stats.executed == 3
        assert stats.failed == 0
        assert stats.mode == "process"
        # the evaluation work happened in the workers; the dispatcher's
        # totals must still carry it (merged per-request deltas)
        assert delta["pattern_matches"] > 0
        assert delta["trees_built"] > 0

    def test_timeout_crosses_the_process_boundary(
        self, engine, start_method
    ):
        with QueryService(
            engine, threads=1, mode="process", start_method=start_method
        ) as svc:
            svc.prime(timeout=60)
            with pytest.raises(QueryTimeoutError):
                svc.execute(QUERY, deadline=1e-9)
            assert svc.stats().timeouts == 1

    def test_resource_limit_crosses_the_process_boundary(
        self, engine, start_method
    ):
        with QueryService(
            engine, threads=1, mode="process", start_method=start_method
        ) as svc:
            with pytest.raises(ResourceLimitError):
                svc.execute(QUERY, max_trees=1)


class TestConfiguration:
    def test_modes_and_methods_are_exported(self):
        assert SERVICE_MODES == ("thread", "process")
        assert default_start_method() in START_METHODS

    def test_thread_mode_has_no_pool(self, engine):
        with QueryService(engine, threads=2) as svc:
            assert svc.start_method is None
            assert svc.prime() == []
            assert svc.stats().mode == "thread"

    def test_rejects_unknown_mode(self, engine):
        with pytest.raises(ServiceError):
            QueryService(engine, mode="fiber")

    def test_rejects_unknown_start_method(self, engine):
        with pytest.raises(ServiceError):
            QueryService(engine, mode="process", start_method="bogus")

    def test_pool_rejects_nonpositive_workers(self, engine):
        with pytest.raises(ServiceError):
            WorkerPool(engine.db, workers=0)

    def test_closed_service_rejects_queries(self, engine):
        svc = QueryService(engine, threads=1, mode="process")
        svc.close()
        with pytest.raises(ServiceError):
            svc.execute(QUERY)
        svc.close()  # idempotent
