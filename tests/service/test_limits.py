"""Deadline, cardinality and cancellation limits on the evaluator."""

import threading
import time

import pytest

from repro.core.base import Context, Operator
from repro.core.evaluator import evaluate
from repro.core.limits import ExecutionLimits
from repro.errors import (
    ExecutionLimitError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceLimitError,
)
from repro.model.sequence import TreeSequence
from repro.storage.database import Database


class NapOp(Operator):
    """Synthetic operator: sleeps, then forwards its input unchanged."""

    name = "Nap"

    def __init__(self, inputs=(), naptime=0.0, gate=None):
        super().__init__(inputs)
        self.naptime = naptime
        self.gate = gate

    def execute(self, ctx, inputs):
        if self.gate is not None:
            self.gate.set()
        if self.naptime:
            time.sleep(self.naptime)
        return inputs[0] if inputs else TreeSequence()


def _chain(length, naptime=0.0, gate=None):
    plan = NapOp(naptime=naptime, gate=gate)
    for _ in range(length - 1):
        plan = NapOp([plan], naptime=naptime)
    return plan


def _ctx(limits):
    return Context(Database(), scan_cache=False, limits=limits)


class TestDeadline:
    def test_timeout_fires_within_twice_the_budget(self):
        # 100 operators x 10ms dwarf the 50ms budget; the cooperative
        # check fires between operators, so the abort lands within one
        # operator's sleep past the deadline - well inside 2x the budget
        budget = 0.05
        plan = _chain(100, naptime=0.01)
        limits = ExecutionLimits(deadline=budget)
        started = time.monotonic()
        with pytest.raises(QueryTimeoutError) as excinfo:
            evaluate(plan, _ctx(limits))
        elapsed = time.monotonic() - started
        assert elapsed < 2 * budget
        assert excinfo.value.budget_seconds == budget
        assert excinfo.value.elapsed_seconds >= budget

    def test_timeout_is_an_execution_limit_error(self):
        with pytest.raises(ExecutionLimitError):
            evaluate(
                _chain(10, naptime=0.01),
                _ctx(ExecutionLimits(deadline=0.001)),
            )

    def test_no_deadline_runs_to_completion(self):
        result = evaluate(_chain(5), _ctx(ExecutionLimits(max_trees=10)))
        assert len(result) == 0

    def test_start_is_idempotent(self):
        # a legacy-path retry re-enters evaluate() with the same limits;
        # the deadline must keep counting from the first anchor
        limits = ExecutionLimits(deadline=10.0)
        limits.start()
        anchor = limits.elapsed()
        time.sleep(0.02)
        limits.start()
        assert limits.elapsed() > anchor
        assert limits.elapsed() >= 0.02

    def test_rejects_nonpositive_budgets(self):
        with pytest.raises(ValueError):
            ExecutionLimits(deadline=0)
        with pytest.raises(ValueError):
            ExecutionLimits(max_trees=0)


class TestCardinality:
    def test_resource_limit_names_the_operator(self, tiny_engine):
        with pytest.raises(ResourceLimitError) as excinfo:
            tiny_engine.run(
                'FOR $p IN document("auction.xml")//person '
                "RETURN $p/name",
                max_trees=1,
            )
        assert excinfo.value.limit == 1
        assert excinfo.value.produced > 1
        assert excinfo.value.operator

    def test_limit_checked_on_intermediate_outputs(self, tiny_engine):
        # the final result is 1 tree (only a1 has 3 bidders), but the
        # Select binds all 3 auctions before the aggregate Filter prunes:
        # the budget applies mid-plan, catching explosions before the root
        query = (
            'FOR $o IN document("auction.xml")//open_auction '
            "WHERE count($o/bidder) > 2 RETURN $o/initial"
        )
        assert len(tiny_engine.run(query)) == 1
        with pytest.raises(ResourceLimitError):
            tiny_engine.run(query, max_trees=2)

    def test_under_budget_passes(self, tiny_engine):
        result = tiny_engine.run(
            'FOR $p IN document("auction.xml")//person RETURN $p/name',
            max_trees=1000,
        )
        assert len(result) == 3


class TestCancellation:
    def test_cancel_aborts_a_running_query(self):
        gate = threading.Event()
        limits = ExecutionLimits()
        plan = _chain(200, naptime=0.005, gate=gate)
        errors = []

        def run():
            try:
                evaluate(plan, _ctx(limits))
            except Exception as error:  # noqa: BLE001 - captured for assert
                errors.append(error)

        worker = threading.Thread(target=run)
        worker.start()
        assert gate.wait(timeout=5.0)  # the query is inside an operator
        limits.cancel()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert len(errors) == 1
        assert isinstance(errors[0], QueryCancelledError)

    def test_cancelled_flag(self):
        limits = ExecutionLimits()
        assert not limits.cancelled
        limits.cancel()
        assert limits.cancelled
        with pytest.raises(QueryCancelledError):
            limits.check()


class TestEnginePlumbing:
    def test_deadline_shorthand_raises_timeout(self, xmark_engine):
        with pytest.raises(QueryTimeoutError):
            xmark_engine.run(
                'FOR $p IN document("auction.xml")//person '
                'FOR $o IN document("auction.xml")//open_auction '
                "WHERE $p/@id = $o/bidder//@person "
                "RETURN <b>{$p/name/text()}</b>",
                deadline=1e-9,
            )

    def test_limits_rejected_for_nav(self, tiny_engine):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            tiny_engine.run("FOR $p IN doc RETURN $p", engine="nav", deadline=1.0)

    def test_matcher_ticks_respect_deadline(self, xmark_engine):
        # drive the per-tree matcher tick: a deadline so small that the
        # first Select's extension loop must be what notices it
        from repro.core.limits import TICK_INTERVAL

        assert TICK_INTERVAL > 0
        with pytest.raises(QueryTimeoutError):
            xmark_engine.run(
                'FOR $p IN document("auction.xml")//person '
                "RETURN <o>{$p/name/text()}</o>",
                deadline=1e-9,
            )
