"""Unit tests for the QueryService: caching, budgets, degradation."""

import threading
import time

import pytest

from repro import Engine
from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServiceError,
)
from repro.service import PreparedQuery, QueryService
from tests.conftest import TINY_AUCTION

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)


@pytest.fixture
def engine():
    e = Engine()
    e.load_xml("auction.xml", TINY_AUCTION)
    return e


@pytest.fixture
def service(engine):
    with QueryService(engine, threads=4) as svc:
        yield svc


def _xml(result):
    return [tree.to_xml() for tree in result]


class TestPreparedQueries:
    def test_results_match_engine_run(self, engine, service):
        assert _xml(service.execute(QUERY)) == _xml(engine.run(QUERY))

    def test_second_execution_skips_compilation(self, engine, service,
                                                monkeypatch):
        compiles = []
        original = Engine.plan

        def counting_plan(self, *args, **kwargs):
            compiles.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Engine, "plan", counting_plan)
        service.execute(QUERY)
        service.execute(QUERY)
        service.execute("  " + QUERY.replace(" WHERE", "\n   WHERE"))
        assert len(compiles) == 1, "repeat executions must not recompile"
        metrics = engine.db.metrics
        assert metrics.plan_cache_misses == 1
        assert metrics.plan_cache_hits == 2

    def test_prepare_returns_reusable_handle(self, service):
        prepared = service.prepare(QUERY)
        assert isinstance(prepared, PreparedQuery)
        assert not prepared.cache_hit
        assert service.prepare(QUERY).cache_hit
        assert _xml(service.execute(prepared)) == _xml(service.execute(QUERY))
        assert "Select" in prepared.explain()

    def test_document_reload_invalidates(self, engine, service):
        service.execute(QUERY)
        engine.load_xml("auction.xml", TINY_AUCTION)  # bumps generation
        assert not service.prepare(QUERY).cache_hit
        assert service.cache.stats().evictions == 1

    def test_rewrite_config_is_part_of_the_key(self, service):
        service.prepare(QUERY)
        assert not service.prepare(QUERY, optimize=True).cache_hit

    def test_nav_engine_rejected(self, service):
        with pytest.raises(ServiceError):
            service.prepare(QUERY, engine="nav")

    def test_strict_service_validates_at_prepare(self, engine):
        with QueryService(engine, strict=True) as svc:
            prepared = svc.prepare(QUERY)
            assert prepared.plan is not None


class TestConcurrentExecution:
    def test_execute_many_preserves_order(self, engine, service):
        queries = [
            QUERY,
            'FOR $o IN document("auction.xml")//open_auction '
            "RETURN <i>{$o/initial/text()}</i>",
        ] * 8
        expected = [_xml(engine.run(q)) for q in queries]
        results = service.execute_many(queries)
        assert [_xml(r) for r in results] == expected

    def test_submit_returns_live_handle(self, service):
        handle = service.submit(QUERY)
        result = handle.result(timeout=10)
        assert handle.done()
        assert handle.exception() is None
        assert len(result) == 2

    def test_stats_accumulate(self, service):
        service.execute_many([QUERY] * 5)
        stats = service.stats()
        assert stats.executed == 5
        assert stats.failed == 0
        assert stats.threads == 4
        assert stats.cache.hits == 4
        assert stats.cache.misses == 1


class TestBudgets:
    def test_default_deadline_applies(self, engine):
        with QueryService(engine, default_deadline=1e-9) as svc:
            with pytest.raises(QueryTimeoutError):
                svc.execute(QUERY)
            assert svc.stats().timeouts == 1

    def test_per_query_deadline_overrides_default(self, engine):
        with QueryService(engine, default_deadline=60.0) as svc:
            with pytest.raises(QueryTimeoutError):
                svc.execute(QUERY, deadline=1e-9)

    def test_cancel_running_query(self, engine, monkeypatch):
        from repro.core import evaluator as evaluator_module

        gate = threading.Event()
        original = evaluator_module.evaluate

        def slow_evaluate(plan, ctx, tracer=None):
            gate.set()
            # hold the query inside execution until cancel lands
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                ctx.limits.check()
                time.sleep(0.005)
            return original(plan, ctx, tracer)

        monkeypatch.setattr(
            "repro.service.service.evaluate", slow_evaluate
        )
        with QueryService(engine, threads=2) as svc:
            handle = svc.submit(QUERY)
            assert gate.wait(timeout=5.0)
            assert handle.cancel()
            with pytest.raises(QueryCancelledError):
                handle.result(timeout=10)
            assert svc.stats().cancelled == 1

    def test_cancel_finished_query_is_a_noop(self, service):
        handle = service.submit(QUERY)
        handle.result(timeout=10)
        assert not handle.cancel()


class TestGracefulDegradation:
    def test_retries_once_on_legacy_path(self, engine, monkeypatch):
        from repro.physical import structural_join

        attempts = []

        def flaky_evaluate(plan, ctx, tracer=None):
            attempts.append(structural_join.fast_path_enabled())
            if structural_join.fast_path_enabled():
                raise RuntimeError("simulated fast-path defect")
            from repro.core.evaluator import evaluate as real

            return real(plan, ctx, tracer)

        monkeypatch.setattr(
            "repro.service.service.evaluate", flaky_evaluate
        )
        with QueryService(engine, threads=1) as svc:
            result = svc.execute(QUERY)
        assert len(result) == 2
        assert attempts == [True, False], "one fast try, one legacy retry"
        assert svc.stats().legacy_retries == 1
        assert structural_join.fast_path_enabled(), "toggle restored"

    def test_retry_disabled_surfaces_the_error(self, engine, monkeypatch):
        def broken_evaluate(plan, ctx, tracer=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(
            "repro.service.service.evaluate", broken_evaluate
        )
        with QueryService(engine, threads=1, retry_legacy=False) as svc:
            with pytest.raises(RuntimeError, match="boom"):
                svc.execute(QUERY)

    def test_original_error_raised_when_legacy_also_fails(
        self, engine, monkeypatch
    ):
        def always_broken(plan, ctx, tracer=None):
            raise RuntimeError("original defect")

        monkeypatch.setattr(
            "repro.service.service.evaluate", always_broken
        )
        with QueryService(engine, threads=1) as svc:
            with pytest.raises(RuntimeError, match="original defect"):
                svc.execute(QUERY)
            assert svc.stats().failed == 1

    def test_structured_aborts_are_never_retried(self, engine):
        with QueryService(engine, threads=1) as svc:
            with pytest.raises(QueryTimeoutError):
                svc.execute(QUERY, deadline=1e-9)
            assert svc.stats().legacy_retries == 0


class TestLifecycle:
    def test_closed_service_rejects_queries(self, engine):
        svc = QueryService(engine)
        svc.close()
        with pytest.raises(ServiceError):
            svc.execute(QUERY)
        with pytest.raises(ServiceError):
            svc.prepare(QUERY)

    def test_engine_service_helper(self, engine):
        with engine.service(threads=2) as svc:
            assert len(svc.execute(QUERY)) == 2

    def test_database_can_be_wrapped_directly(self, engine):
        with QueryService(engine.db, threads=1) as svc:
            assert len(svc.execute(QUERY)) == 2

    def test_rejects_nonpositive_threads(self, engine):
        with pytest.raises(ServiceError):
            QueryService(engine, threads=0)
