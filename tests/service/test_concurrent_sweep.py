"""Concurrency equivalence sweep: pooled execution changes nothing.

Every XMark benchmark query runs on an 8-thread :class:`QueryService`
and its results are compared byte-for-byte against plain serial
``Engine.run`` — once with a cold plan cache and once warm.  The stored
documents, indexes and compiled plans are all immutable at execution
time and every request gets its own ScanCache, so concurrency must be
invisible in the output.
"""

import pytest

from repro.service import QueryService
from repro.xmark import FIGURE15_ORDER, QUERIES

THREADS = 8


def _xml(result):
    return [tree.to_xml() for tree in result]


@pytest.fixture(scope="module")
def serial_results(xmark_engine):
    """Reference output of every benchmark query, computed serially."""
    return {
        name: _xml(xmark_engine.run(QUERIES[name].text))
        for name in FIGURE15_ORDER
    }


def test_cold_cache_sweep_matches_serial(xmark_engine, serial_results):
    with QueryService(xmark_engine, threads=THREADS) as svc:
        assert len(svc.cache) == 0, "cache must start cold"
        results = svc.execute_many(
            QUERIES[name].text for name in FIGURE15_ORDER
        )
        for name, result in zip(FIGURE15_ORDER, results):
            assert _xml(result) == serial_results[name], (
                f"{name}: pooled execution diverged from serial (cold cache)"
            )
        stats = svc.stats()
        assert stats.executed == len(FIGURE15_ORDER)
        assert stats.failed == 0
        assert stats.cache.misses == len(FIGURE15_ORDER)


def test_warm_cache_sweep_matches_serial(xmark_engine, serial_results):
    with QueryService(xmark_engine, threads=THREADS) as svc:
        for name in FIGURE15_ORDER:  # warm every plan
            svc.prepare(QUERIES[name].text)
        results = svc.execute_many(
            QUERIES[name].text for name in FIGURE15_ORDER
        )
        for name, result in zip(FIGURE15_ORDER, results):
            assert _xml(result) == serial_results[name], (
                f"{name}: pooled execution diverged from serial (warm cache)"
            )
        stats = svc.stats()
        assert stats.cache.hits >= len(FIGURE15_ORDER), (
            "the warm sweep must answer every prepare from the cache"
        )


def test_interleaved_repeats_stay_deterministic(xmark_engine, serial_results):
    """Each query three times, shuffled deterministically across the pool."""
    names = [
        name
        for offset in range(3)
        for name in (
            FIGURE15_ORDER[offset:] + FIGURE15_ORDER[:offset]
        )
    ]
    with QueryService(xmark_engine, threads=THREADS) as svc:
        results = svc.execute_many(QUERIES[name].text for name in names)
    for name, result in zip(names, results):
        assert _xml(result) == serial_results[name], (
            f"{name}: repeat under contention diverged"
        )
