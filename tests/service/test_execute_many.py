"""Regression tests: execute_many must drain the whole batch.

The original implementation re-raised the first failed handle's error
immediately, abandoning the later handles mid-flight — a retry of the
batch then raced the previous batch's stragglers on the pool.  The
fixed contract: every handle finishes before the first failure (in
submission order) is re-raised.
"""

import threading
import time

import pytest

from repro import Engine
from repro.service import QueryService
from tests.conftest import TINY_AUCTION

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)
AUCTIONS = (
    'FOR $o IN document("auction.xml")//open_auction '
    "RETURN <i>{$o/initial/text()}</i>"
)


@pytest.fixture
def engine():
    e = Engine()
    e.load_xml("auction.xml", TINY_AUCTION)
    return e


def test_batch_failure_does_not_orphan_siblings(engine, monkeypatch):
    from repro.core.evaluator import evaluate as real_evaluate

    finished = []
    lock = threading.Lock()
    with QueryService(engine, threads=2, retry_legacy=False) as svc:
        bad = svc.prepare(QUERY)
        good = svc.prepare(AUCTIONS)

        def evaluate(plan, ctx, tracer=None):
            if plan is bad.plan:
                time.sleep(0.05)  # let siblings overtake it on the pool
                raise RuntimeError("batch head failure")
            result = real_evaluate(plan, ctx, tracer)
            with lock:
                finished.append(len(result))
            return result

        monkeypatch.setattr("repro.service.service.evaluate", evaluate)
        with pytest.raises(RuntimeError, match="batch head failure"):
            svc.execute_many([bad, good, good, good])
        # every sibling ran to completion before the error surfaced
        assert len(finished) == 3
        stats = svc.stats()
        assert stats.executed == 4
        assert stats.failed == 1


def test_first_failure_in_submission_order_wins(engine, monkeypatch):
    with QueryService(engine, threads=2, retry_legacy=False) as svc:
        slow = svc.prepare(QUERY)
        fast = svc.prepare(AUCTIONS)

        def evaluate(plan, ctx, tracer=None):
            if plan is slow.plan:
                time.sleep(0.1)  # first submitted, last to fail
                raise RuntimeError("first submitted")
            raise RuntimeError("second submitted")

        monkeypatch.setattr("repro.service.service.evaluate", evaluate)
        # both fail; completion order is reversed, submission order must
        # decide which error the caller sees
        with pytest.raises(RuntimeError, match="first submitted"):
            svc.execute_many([slow, fast])
        assert svc.stats().failed == 2


def test_clean_batch_returns_results_in_order(engine):
    expected = [
        [t.to_xml() for t in engine.run(q)] for q in (QUERY, AUCTIONS)
    ]
    with QueryService(engine, threads=2) as svc:
        results = svc.execute_many([QUERY, AUCTIONS])
    assert [[t.to_xml() for t in r] for r in results] == expected
