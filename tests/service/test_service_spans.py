"""Service span integration: traced requests across the worker boundary.

The span layer's unit semantics are pinned in
``tests/telemetry/test_spans.py``; here real requests run through
:class:`~repro.service.QueryService` — thread mode and process mode
under every available start method — and the captures must carry the
documented phase tree, export cleanly to Chrome trace JSON, and change
no result bytes.  The concurrency tests double as the cross-process
accounting regression: per-request counters and merged telemetry stay
exact with two or more requests in flight on a spawn pool.
"""

import multiprocessing

import pytest

from repro import Engine
from repro.service import START_METHODS, QueryService
from repro.service.cache import normalize_query
from repro.telemetry.hooks import MetricsRegistry, use_registry
from repro.telemetry.querylog import query_hash
from repro.telemetry.spans import check_chrome_trace, to_chrome_trace
from tests.conftest import TINY_AUCTION

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)
HEAVY = (
    'FOR $o IN document("auction.xml")//open_auction, '
    '$p IN document("auction.xml")//person '
    "WHERE $o/bidder/personref/@person = $p/@id "
    "RETURN <w>{$p/name/text()}</w>"
)
LIGHT = 'FOR $q IN document("auction.xml")//quantity RETURN $q'

AVAILABLE = [
    m for m in START_METHODS
    if m in multiprocessing.get_all_start_methods()
]

#: Span names every traced request must carry, whatever the backend.
DISPATCHER_PHASES = {
    "request", "prepare", "plan_cache", "queue", "execute",
}
#: Extra phases a process-mode dispatch adds, including the worker's.
PROCESS_PHASES = {
    "dispatch", "serialize", "ipc_send", "worker", "worker.deserialize",
    "worker.execute", "worker.result_serialize", "ipc_recv",
    "result_deserialize", "merge",
}


def fresh_engine():
    engine = Engine()
    engine.load_xml("auction.xml", TINY_AUCTION)
    return engine


def _xml(result):
    return [tree.to_xml() for tree in result]


class TestThreadModeSpans:
    def test_disabled_by_default_and_costs_no_capture(self):
        with QueryService(fresh_engine(), threads=1) as svc:
            assert svc.spans is False
            svc.execute(QUERY)
            assert len(svc.span_store) == 0
            assert svc.stats().spans is False

    def test_traced_request_carries_the_phase_tree(self):
        with QueryService(fresh_engine(), threads=1, spans=True) as svc:
            assert svc.stats().spans is True
            svc.execute(QUERY)
            (capture,) = svc.span_store.tail(1)
        names = {span.name for span in capture.spans}
        assert DISPATCHER_PHASES <= names
        assert {"parse", "translate", "compile"} <= names
        assert capture.status == "ok"

    def test_trace_id_joins_the_query_log(self):
        with QueryService(fresh_engine(), threads=1, spans=True) as svc:
            svc.execute(QUERY)
            (event,) = svc.query_log.tail(1)
            capture = svc.span_store.get(event.trace_id)
        assert capture is not None
        assert capture.trace_id == event.trace_id

    def test_spans_change_no_result_bytes(self):
        expected = _xml(fresh_engine().run(QUERY))
        with QueryService(fresh_engine(), threads=1, spans=True) as svc:
            assert _xml(svc.execute(QUERY)) == expected

    def test_failed_request_is_captured_with_its_status(self):
        with QueryService(fresh_engine(), threads=1, spans=True) as svc:
            with pytest.raises(Exception):
                svc.execute("FOR $x IN !!! RETURN $x")
            (capture,) = svc.span_store.tail(1)
        assert capture.status == "error"

    def test_planner_phase_appears_when_the_planner_runs(self):
        from repro.planner import use_planner

        with use_planner(True):
            with QueryService(
                fresh_engine(), threads=1, spans=True
            ) as svc:
                svc.execute(QUERY)
                (capture,) = svc.span_store.tail(1)
        assert "planner" in {span.name for span in capture.spans}


@pytest.mark.parametrize("start_method", AVAILABLE)
class TestProcessModeSpans:
    def test_worker_phases_ride_the_request_timeline(self, start_method):
        expected = _xml(fresh_engine().run(QUERY))
        with QueryService(
            fresh_engine(),
            threads=2,
            mode="process",
            start_method=start_method,
            spans=True,
        ) as svc:
            assert _xml(svc.execute(QUERY)) == expected
            (capture,) = svc.span_store.tail(1)
        names = {span.name for span in capture.spans}
        assert DISPATCHER_PHASES <= names
        assert PROCESS_PHASES <= names
        by_name = {span.name: span for span in capture.spans}
        dispatch = by_name["dispatch"]
        worker = by_name["worker"]
        # worker spans live on the worker's pid track, inside dispatch
        assert worker.pid != dispatch.pid
        assert dispatch.start <= worker.start <= worker.end <= dispatch.end
        execute = by_name["worker.execute"]
        assert worker.start <= execute.start <= execute.end <= worker.end

    def test_chrome_export_is_well_formed(self, start_method):
        with QueryService(
            fresh_engine(),
            threads=2,
            mode="process",
            start_method=start_method,
            spans=True,
        ) as svc:
            svc.execute_many([QUERY, LIGHT, QUERY])
            captures = svc.span_store.tail(3)
        assert len(captures) == 3
        payload = to_chrome_trace(captures)
        assert check_chrome_trace(payload) == []

    def test_workers_introspection_counts_served_requests(
        self, start_method
    ):
        with QueryService(
            fresh_engine(),
            threads=2,
            mode="process",
            start_method=start_method,
            spans=True,
        ) as svc:
            svc.prime()
            svc.execute_many([QUERY, LIGHT, QUERY, LIGHT])
            workers = svc.workers()
        assert workers["mode"] == "process"
        assert workers["start_method"] == start_method
        assert workers["in_flight"] == 0
        assert workers["dispatched"] >= 4
        assert len(workers["workers"]) == 2
        assert (
            sum(entry["requests"] for entry in workers["workers"]) >= 4
        )
        for entry in workers["workers"]:
            assert entry["pid"] > 0
            assert entry["last_heartbeat"] is not None
            plan_runs = sum(entry["plans"].values())
            assert plan_runs == entry["requests"]

    def test_untraced_service_keeps_the_plain_wire_path(
        self, start_method
    ):
        expected = _xml(fresh_engine().run(QUERY))
        with QueryService(
            fresh_engine(),
            threads=1,
            mode="process",
            start_method=start_method,
            spans=False,
        ) as svc:
            assert _xml(svc.execute(QUERY)) == expected
            assert len(svc.span_store) == 0


def _serial_stable_counters(query):
    """One query's warm-independent counter delta, measured alone."""
    stable = (
        "pattern_matches", "structural_joins", "navigation_steps",
        "groupby_ops",
    )
    with QueryService(fresh_engine(), threads=1) as svc:
        svc.execute(query)
        (event,) = svc.query_log.tail(1)
    return {k: event.counters.get(k, 0) for k in stable}


@pytest.mark.skipif(
    "spawn" not in AVAILABLE, reason="platform offers no spawn"
)
class TestSpawnConcurrencyAccounting:
    """≥2 requests in flight on a spawn pool: nothing bleeds, nothing
    is lost — per-event counters match the serial baselines and the
    worker telemetry deltas merge to exact dispatcher totals."""

    def test_concurrent_requests_attribute_only_their_own_work(self):
        expected = {
            query: _serial_stable_counters(query)
            for query in (HEAVY, LIGHT)
        }
        assert expected[HEAVY] != expected[LIGHT]
        with QueryService(
            fresh_engine(),
            threads=2,
            mode="process",
            start_method="spawn",
            spans=True,
        ) as svc:
            svc.prime()
            handles = [
                svc.submit(query)
                for query in (HEAVY, LIGHT, HEAVY, LIGHT)
            ]
            for handle in handles:
                handle.result(timeout=60)
            events = svc.query_log.tail(4)
        assert len(events) == 4
        for event in events:
            query = (
                HEAVY
                if event.query_hash == query_hash(normalize_query(HEAVY))
                else LIGHT
            )
            got = {k: event.counters.get(k, 0) for k in expected[query]}
            assert got == expected[query], (
                f"cross-worker counter bleed for {query!r}"
            )

    def test_worker_registry_deltas_merge_to_exact_totals(self):
        with use_registry(MetricsRegistry()) as registry:
            with QueryService(
                fresh_engine(),
                threads=2,
                mode="process",
                start_method="spawn",
                spans=True,
            ) as svc:
                svc.prime()
                handles = [svc.submit(HEAVY) for _ in range(4)]
                for handle in handles:
                    handle.result(timeout=60)
            merged = registry.snapshot()
        with use_registry(MetricsRegistry()) as registry:
            with QueryService(fresh_engine(), threads=1) as svc:
                for _ in range(4):
                    svc.execute(HEAVY)
            serial = registry.snapshot()
        # the matcher metrics are per-request work shipped from the
        # workers via export_state/merge_state; four concurrent requests
        # merge to exactly four requests' worth — no loss, no bleed
        key = "repro_pattern_matches_total"
        assert merged["counters"][key] == serial["counters"][key]
        hkey = "repro_pattern_match_trees"
        assert (
            merged["histograms"][hkey]["count"]
            == serial["histograms"][hkey]["count"]
        )
        assert (
            merged["histograms"][hkey]["sum"]
            == serial["histograms"][hkey]["sum"]
        )
