"""Regression test for the CC102 fix in QueryService.close().

The closed flag is written under the service lock now; racing closers
and submitters must see a consistent open/closed state — either the
query runs or it gets the clean ServiceError, never a torn shutdown.
"""

import threading

from repro.errors import ServiceError
from repro.service import QueryService


def test_racing_close_and_submit_never_tear(tiny_engine):
    for _ in range(10):
        service = QueryService(tiny_engine)
        start = threading.Barrier(3)
        errors = []

        def submit():
            start.wait()
            try:
                service.execute(
                    'FOR $p IN document("auction.xml")//person '
                    "RETURN $p/name"
                )
            except ServiceError:
                pass  # closed first: the contractually clean outcome
            except Exception as error:  # pragma: no cover - failure
                errors.append(error)

        def close():
            start.wait()
            try:
                service.close()
            except Exception as error:  # pragma: no cover - failure
                errors.append(error)

        threads = [
            threading.Thread(target=fn)
            for fn in (submit, submit, close)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


def test_double_close_is_idempotent(tiny_engine):
    service = QueryService(tiny_engine)
    service.close()
    service.close()
    try:
        service.execute("FOR $x IN document('auction.xml')//x RETURN $x")
        raise AssertionError("closed service must reject queries")
    except ServiceError:
        pass
