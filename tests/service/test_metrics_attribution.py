"""Regression tests: per-request counter deltas must not bleed.

The query log attaches each request's counter delta to its event.  The
original code measured the window with *global* snapshots, so two
requests in flight at once attributed each other's work to whichever
finished first.  The fixed window is thread-local
(``local_snapshot``/``local_diff``): a request runs wholly on one
worker thread, so the thread's delta is the request's delta.
"""

import threading

from repro import Engine
from repro.service import QueryService
from repro.service.cache import normalize_query
from repro.telemetry.querylog import query_hash
from tests.conftest import TINY_AUCTION

#: Two queries with very different work profiles.
HEAVY = (
    'FOR $o IN document("auction.xml")//open_auction, '
    '$p IN document("auction.xml")//person '
    "WHERE $o/bidder/personref/@person = $p/@id "
    "RETURN <w>{$p/name/text()}</w>"
)
LIGHT = 'FOR $q IN document("auction.xml")//quantity RETURN $q'


def fresh_engine():
    engine = Engine()
    engine.load_xml("auction.xml", TINY_AUCTION)
    return engine


def warmed_delta(query):
    """The delta one request produces alone, on a warm buffer pool."""
    with QueryService(fresh_engine(), threads=1) as svc:
        # warm: both queries touch their pages once so the measured run
        # sees the same resident set the concurrent scenario will
        svc.execute(HEAVY)
        svc.execute(LIGHT)
        svc.execute(query)
        (event,) = svc.query_log.tail(1)
    return event.counters


def test_concurrent_requests_see_only_their_own_work(monkeypatch):
    expected = {query: warmed_delta(query) for query in (HEAVY, LIGHT)}
    # the two profiles genuinely differ, so bleed could not hide
    assert expected[HEAVY] != expected[LIGHT]
    assert expected[HEAVY].get("pattern_matches", 0) > 0

    from repro.core.evaluator import evaluate as real_evaluate

    barrier = threading.Barrier(2, timeout=10)

    def overlapping_evaluate(plan, ctx, tracer=None):
        barrier.wait()
        return real_evaluate(plan, ctx, tracer)

    with QueryService(fresh_engine(), threads=2) as svc:
        svc.execute(HEAVY)  # warm the pool as in the serial scenario
        svc.execute(LIGHT)
        # force the two measured requests to overlap on the two workers
        monkeypatch.setattr(
            "repro.service.service.evaluate", overlapping_evaluate
        )
        handles = [svc.submit(HEAVY), svc.submit(LIGHT)]
        for handle in handles:
            handle.result(timeout=10)
        events = svc.query_log.tail(2)

    by_hash = {event.query_hash: event.counters for event in events}
    assert len(by_hash) == 2
    for query in (HEAVY, LIGHT):
        qhash = query_hash(normalize_query(query))
        assert by_hash[qhash] == expected[query], (
            f"counter bleed between concurrent requests for {query!r}"
        )


def test_stats_totals_stay_exact_under_concurrency():
    with QueryService(fresh_engine(), threads=4) as svc:
        svc.execute_many([HEAVY, LIGHT] * 4)
        stats = svc.stats()
        events = svc.query_log.tail(8)
    # the striped counters are exact: the per-request deltas are fully
    # contained in the merged totals
    per_request = {}
    for event in events:
        for name, value in event.counters.items():
            per_request[name] = per_request.get(name, 0) + value
    for name, value in per_request.items():
        assert stats.counters[name] >= value
    assert stats.executed == 8
    assert stats.failed == 0
