"""Unit tests for the prepared-plan LRU cache."""

import pytest

from repro.service import PlanCache, PlanCacheKey, normalize_query
from repro.storage.stats import Metrics
from repro.xquery.translator import translate_query

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "RETURN <o>{$p/name/text()}</o>"
)


def _key(text: str, engine: str = "tlc", optimize: bool = False):
    return PlanCacheKey(normalize_query(text), engine, optimize)


class TestNormalizeQuery:
    def test_collapses_whitespace_runs(self):
        messy = "FOR  $p\n  IN\tdocument('d')//person\n RETURN $p"
        assert normalize_query(messy) == (
            "FOR $p IN document('d')//person RETURN $p"
        )

    def test_strips_ends(self):
        assert normalize_query("  a b  ") == "a b"

    def test_reformatted_copies_share_a_key(self):
        assert _key(QUERY) == _key("  " + QUERY.replace(" RETURN", "\nRETURN"))

    def test_different_configs_get_different_keys(self):
        assert _key(QUERY) != _key(QUERY, optimize=True)
        assert _key(QUERY) != _key(QUERY, engine="gtp")


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        key = _key(QUERY)
        translation = translate_query(QUERY)
        assert cache.get(key, generation=1) is None
        cache.put(key, 1, translation)
        assert cache.get(key, generation=1) is translation
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_get_or_compile_compiles_once(self):
        cache = PlanCache(capacity=4)
        calls = []

        def compile_fn():
            calls.append(1)
            return translate_query(QUERY)

        first, hit1 = cache.get_or_compile(_key(QUERY), 1, compile_fn)
        second, hit2 = cache.get_or_compile(_key(QUERY), 1, compile_fn)
        assert (hit1, hit2) == (False, True)
        assert second is first
        assert len(calls) == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        t = translate_query(QUERY)
        a, b, c = (_key(QUERY + f" (: {i} :)") for i in "abc")
        cache.put(a, 1, t)
        cache.put(b, 1, t)
        assert cache.get(a, 1) is not None  # a becomes most-recent
        cache.put(c, 1, t)  # evicts b, the LRU entry
        assert b not in cache
        assert a in cache and c in cache
        assert cache.stats().evictions == 1

    def test_generation_invalidation(self):
        cache = PlanCache(capacity=4)
        key = _key(QUERY)
        cache.put(key, 1, translate_query(QUERY))
        # a document reload bumped the generation: the entry is stale
        assert cache.get(key, generation=2) is None
        assert key not in cache
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.misses == 1

    def test_metrics_mirroring(self):
        metrics = Metrics()
        cache = PlanCache(capacity=1, metrics=metrics)
        key = _key(QUERY)
        t = translate_query(QUERY)
        cache.get(key, 1)  # miss
        cache.put(key, 1, t)
        cache.get(key, 1)  # hit
        cache.put(_key(QUERY + " (: other :)"), 1, t)  # evicts
        assert metrics.plan_cache_hits == 1
        assert metrics.plan_cache_misses == 1
        assert metrics.plan_cache_evictions == 1

    def test_clear_keeps_counts(self):
        cache = PlanCache(capacity=4)
        cache.put(_key(QUERY), 1, translate_query(QUERY))
        cache.get(_key(QUERY), 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
