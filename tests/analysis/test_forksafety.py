"""SX2xx certification tests: static walk, dynamic oracle, registry."""

import pickle
import threading

import pytest

from repro.analysis.forksafety import (
    certify,
    certify_registry,
    certify_storage,
    certify_with_oracle,
    registry_classes,
    representative_plans,
    round_trip,
)
from repro.analysis.findings import (
    PICKLE_CLOSURE,
    PICKLE_LOCK,
    PICKLE_ORACLE,
    PICKLE_RUNTIME,
)


class Holder:
    def __init__(self, **attrs):
        self.__dict__.update(attrs)


class Sneaky:
    """Static walk sees nothing; pickling still fails."""

    def __reduce__(self):
        raise TypeError("nope")


class Guarded:
    """Holds a lock but excludes it via a custom reduction."""

    def __init__(self):
        self._lock = threading.Lock()

    def __getstate__(self):
        return {"restored": True}

    def __setstate__(self, state):
        self._lock = threading.Lock()


def _rebuild_striped(value):
    striped = Striped()
    striped.value = value
    return striped


class Striped(threading.local):
    """A thread-local with its own wire format (like storage Metrics)."""

    def __init__(self):
        self.value = 0

    def __reduce__(self):
        return (_rebuild_striped, (self.value,))


class TestStaticWalk:
    def test_lock_field_is_sx201(self):
        findings = certify(Holder(lock=threading.Lock()), "obj")
        assert [f.code for f in findings] == [PICKLE_LOCK]
        assert findings[0].symbol == ".lock"

    def test_nested_lock_is_found_with_its_path(self):
        obj = Holder(state={"inner": [Holder(guard=threading.RLock())]})
        findings = certify(obj, "obj")
        assert [f.code for f in findings] == [PICKLE_LOCK]
        assert findings[0].symbol == ".state['inner'][0].guard"

    def test_closure_field_is_sx203(self):
        def make():
            x = 1
            return lambda: x

        findings = certify(Holder(fn=make()), "obj")
        assert [f.code for f in findings] == [PICKLE_CLOSURE]

    def test_module_level_function_pickles_by_reference(self):
        findings = certify(Holder(fn=round_trip), "obj")
        assert findings == []

    def test_thread_field_is_sx205(self):
        findings = certify(
            Holder(worker=threading.Thread(target=lambda: None)), "obj"
        )
        assert [f.code for f in findings] == [PICKLE_RUNTIME]

    def test_plain_data_is_clean(self):
        obj = Holder(name="x", rows=[1, 2], meta={"a": (1, 2)})
        assert certify(obj, "obj") == []

    def test_bare_thread_local_is_sx205(self):
        findings = certify(Holder(cell=threading.local()), "obj")
        assert [f.code for f in findings] == [PICKLE_RUNTIME]

    def test_custom_reduce_exempts_a_thread_local(self):
        # a class shipping its own __reduce__ replaces its raw fields at
        # pickle time (storage.stats.Metrics is the real instance of
        # this shape), so the walk must not condemn it — and the oracle
        # agrees, so certify_with_oracle is silent too
        assert certify(Holder(cell=Striped()), "obj") == []
        assert certify_with_oracle(Holder(cell=Striped()), "obj") == []

    def test_database_metrics_certify_clean(self):
        from repro.storage.stats import Metrics

        metrics = Metrics()
        metrics.pages_read += 3
        assert certify(Holder(m=metrics), "obj") == []
        assert round_trip(Holder(m=metrics)) is None

    def test_cycles_terminate(self):
        a = Holder()
        a.loop = a
        assert certify(a, "obj") == []


class TestOracle:
    def test_round_trip_reports_failure(self):
        error = round_trip(Holder(lock=threading.Lock()))
        assert error is not None and "pickle" in error.lower()

    def test_round_trip_ok_is_none(self):
        assert round_trip({"a": [1, 2]}) is None

    def test_oracle_catches_what_the_walk_misses(self):
        findings = certify_with_oracle(Sneaky(), "obj")
        assert [f.code for f in findings] == [PICKLE_ORACLE]

    def test_custom_reduction_downgrades_static_findings(self):
        findings = certify_with_oracle(Guarded(), "obj")
        assert [f.code for f in findings] == [PICKLE_ORACLE]
        assert "custom reduction" in findings[0].message


class TestRegistry:
    def test_representative_plans_cover_every_registry_class(self):
        covered = set()
        for plan in representative_plans().values():
            stack = [plan]
            while stack:
                op = stack.pop()
                covered.add(type(op))
                stack.extend(op.inputs)
        missing = set(registry_classes()) - covered
        assert not missing, (
            f"registry operators without a representative plan: "
            f"{sorted(c.__name__ for c in missing)}"
        )

    def test_registry_certifies_clean(self):
        findings = certify_registry()
        assert findings == [], [f.render() for f in findings]

    @pytest.mark.parametrize(
        "plan_name", sorted(representative_plans())
    )
    def test_every_plan_round_trips_through_pickle(self, plan_name):
        plan = representative_plans()[plan_name]
        clone = pickle.loads(pickle.dumps(plan))
        assert type(clone) is type(plan)
        assert clone.params() == plan.params()

    @pytest.mark.parametrize(
        "cls_name",
        sorted(c.__name__ for c in registry_classes()),
    )
    def test_every_registry_operator_instance_round_trips(self, cls_name):
        instances = []
        for plan in representative_plans().values():
            stack = [plan]
            while stack:
                op = stack.pop()
                if type(op).__name__ == cls_name:
                    instances.append(op)
                stack.extend(op.inputs)
        assert instances, f"no representative instance of {cls_name}"
        for op in instances:
            clone = pickle.loads(pickle.dumps(op))
            assert clone.params() == op.params()

    def test_storage_certifies_clean(self, tiny_db):
        findings = certify_storage(tiny_db)
        assert findings == [], [f.render() for f in findings]
