"""Baseline reconciliation and the run_check orchestrator."""

import json

import pytest

from repro.analysis.checker import PASSES, run_check
from repro.analysis.findings import (
    CHECK_CATALOG,
    Baseline,
    CheckFinding,
    GLOBAL_REBIND,
    UNSAFE_LAZY_INIT,
)
from repro.analysis.diagnostics import Severity


def finding(code=GLOBAL_REBIND, symbol="f:_S", location="m.py"):
    return CheckFinding(
        code=code, location=location, symbol=symbol, message="boom"
    )


class TestCheckFinding:
    def test_key_and_render(self):
        f = finding()
        assert f.key == f"{GLOBAL_REBIND} m.py::f:_S"
        assert GLOBAL_REBIND in f.render()
        assert "boom" in f.render()

    def test_every_catalogued_code_has_a_severity(self):
        for code in CHECK_CATALOG:
            assert finding(code=code).severity is Severity.ERROR


class TestBaseline:
    def test_split_new_suppressed_stale(self):
        base = Baseline(
            {
                finding(symbol="old:_A").key: "reviewed",
                f"{UNSAFE_LAZY_INIT} gone.py::x:_y": "was fixed",
            }
        )
        current = [finding(symbol="old:_A"), finding(symbol="new:_B")]
        new, suppressed, stale = base.split(current)
        assert [f.symbol for f in new] == ["new:_B"]
        assert [f.symbol for f in suppressed] == ["old:_A"]
        assert stale == [f"{UNSAFE_LAZY_INIT} gone.py::x:_y"]

    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline({finding().key: "because"})
        original.save(path)
        loaded = Baseline.load(path)
        assert loaded.suppressions == original.suppressions
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert data["suppressions"][0]["reason"] == "because"

    def test_empty_baseline_marks_everything_new(self):
        new, suppressed, stale = Baseline.empty().split([finding()])
        assert len(new) == 1 and not suppressed and not stale


class TestRunCheck:
    def test_unknown_pass_is_rejected(self):
        with pytest.raises(ValueError):
            run_check(passes=["spellcheck"])

    def test_concurrency_pass_over_fixture_paths(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "_S = None\n"
            "def f():\n"
            "    global _S\n"
            "    _S = 1\n"
        )
        result = run_check(paths=[bad], passes=["concurrency"])
        assert result.per_pass == {"concurrency": 1}
        assert [f.code for f in result.new] == [GLOBAL_REBIND]
        assert result.exit_code() == 1

    def test_baseline_suppresses_and_detects_staleness(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "_S = None\n"
            "def f():\n"
            "    global _S\n"
            "    _S = 1\n"
        )
        result = run_check(paths=[bad], passes=["concurrency"])
        key = result.new[0].key
        base = Baseline({key: "reviewed", "CC104 x.py::a:_b": "stale"})
        result = run_check(
            paths=[bad], baseline=base, passes=["concurrency"]
        )
        assert not result.new
        assert [f.key for f in result.suppressed] == [key]
        assert result.stale == ["CC104 x.py::a:_b"]
        assert result.exit_code() == 0
        assert result.exit_code(strict_baseline=True) == 1
        rendered = result.render()
        assert "suppressed" in rendered and "stale" in rendered

    def test_clean_paths_render_a_summary(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        result = run_check(paths=[clean], passes=["concurrency"])
        assert result.exit_code(strict_baseline=True) == 0
        assert "0 new, 0 suppressed, 0 stale" in result.render()


class TestRepositoryContract:
    """The acceptance criteria: the repo itself checks clean."""

    def test_package_concurrency_findings_match_the_baseline(self):
        from pathlib import Path

        baseline_path = (
            Path(__file__).resolve().parents[2]
            / "tools"
            / "check_baseline.json"
        )
        baseline = Baseline.load(baseline_path)
        result = run_check(baseline=baseline, passes=["concurrency"])
        assert result.new == [], [f.render() for f in result.new]
        assert result.stale == []

    def test_pass_registry_is_stable(self):
        assert PASSES == ("concurrency", "forksafety", "cardinality")
