"""Whole-corpus guarantees: every real plan the system builds lints clean.

These are the analyzer's false-positive regression tests: the XMark
benchmark queries exercise every translation pattern (nested blocks,
aggregates, deferred joins, disjunctions, ordering), and the rewrites
restructure them aggressively — none of it may trip a diagnostic.
"""

import pytest

from repro.patterns.logical_class import LCLAllocator
from repro.rewrites.pipeline import optimize, optimize_plan
from repro.xmark import QUERIES
from repro.xquery.translator import translate_query

_NAMES = sorted(QUERIES)


@pytest.mark.parametrize("name", _NAMES)
def test_translated_plans_lint_clean(name):
    report = translate_query(QUERIES[name].text).lint()
    assert report.ok, report.render()
    assert not report.diagnostics, report.render()


@pytest.mark.parametrize("name", _NAMES)
def test_optimized_plans_lint_clean(name):
    translation = translate_query(QUERIES[name].text)
    report = optimize_plan(translation).lint()
    assert report.ok, report.render()
    assert not report.diagnostics, report.render()


@pytest.mark.parametrize("name", _NAMES)
def test_rewrite_steps_all_verify(name):
    _, log = optimize(translate_query(QUERIES[name].text).plan)
    assert log.verified == ["reuse", "restructure", "illuminate"]


@pytest.mark.parametrize("name", _NAMES)
def test_sweep_cardinality_bounds_raise_no_diagnostics(name, xmark_engine):
    """The LC3xx pass over both plan shapes of every benchmark query."""
    from repro.analysis.cardinality import bound_plan
    from repro.storage.stats import CardinalityStats

    stats = CardinalityStats.from_database(xmark_engine.db)
    translation = translate_query(QUERIES[name].text)
    for plan in (
        translation.plan,
        optimize_plan(translation, verify=False).plan,
    ):
        analysis = bound_plan(plan, stats)
        assert analysis.diagnostics == [], [
            d.render() for d in analysis.diagnostics
        ]


@pytest.mark.parametrize("name", _NAMES)
def test_sweep_plans_certify_pickle_safe(name):
    """The SX2xx pass: every benchmark plan ships to a process pool."""
    from repro.analysis.forksafety import certify_with_oracle

    translation = translate_query(QUERIES[name].text)
    findings = certify_with_oracle(translation.plan, f"xmark:{name}")
    findings.extend(
        certify_with_oracle(
            optimize_plan(translation, verify=False).plan,
            f"xmark:{name}+opt",
        )
    )
    assert findings == [], [f.render() for f in findings]


@pytest.mark.parametrize("name", ["x3", "x5", "Q1", "Q2"])
def test_strict_execution_of_benchmark_queries(name, xmark_engine):
    query = QUERIES[name].text
    plain = xmark_engine.run(query, strict=True)
    optimized = xmark_engine.run(query, optimize=True, strict=True)
    key = lambda seq: sorted(repr(t.canonical(True)) for t in seq)
    assert key(plain) == key(optimized)


class TestAllocatorFork:
    def test_forks_share_one_counter(self):
        parent = LCLAllocator()
        fork_a, fork_b = parent.fork(), parent.fork()
        labels = [
            parent.allocate(),
            fork_a.allocate(),
            fork_b.allocate(),
            fork_a.allocate(),
        ]
        assert labels == [1, 2, 3, 4]  # no label handed out twice
        assert parent.high_water == fork_a.high_water == 5

    def test_reserve_visible_to_all_forks(self):
        parent = LCLAllocator()
        fork = parent.fork()
        fork.reserve(40)
        assert parent.allocate() == 41

    def test_independent_allocators_do_collide(self):
        # the bug fork() prevents: two fresh allocators reuse label 1
        assert LCLAllocator().allocate() == LCLAllocator().allocate()

    def test_no_duplicate_labels_across_nested_blocks(self):
        # a nested-FLWR query: each block allocates through a fork of
        # the same translator counter, so the plan-wide label set is
        # duplicate-free and the analyzer reports no LC102
        query = QUERIES["x6"].text
        translation = translate_query(query)
        report = translation.lint()
        assert not any(d.code == "LC102" for d in report.diagnostics)
