"""LC3xx cardinality-bound tests: interval algebra, transfer, warnings."""

import pytest

from repro.analysis import lint_plan
from repro.analysis.cardinality import (
    Interval,
    _add,
    _mul,
    bound_plan,
)
from repro.analysis.diagnostics import (
    CARDINALITY_BLOWUP,
    EMPTY_BRANCH,
)
from repro.core import FilterOp, JoinOp, SelectOp, UnionOp
from repro.core.base import ClassPredicate, JoinPredicate
from repro.patterns.apt import APT, pattern_node
from repro.storage.stats import CardinalityStats

#: a hand-built database snapshot: 200 nodes, a few known tags
STATS = CardinalityStats(
    tag_counts={
        "auction.xml": {
            "person": 100,
            "name": 100,
            "age": 40,
            "phone": 0,
        }
    },
    totals={"auction.xml": 200},
)


def select(tag, doc="auction.xml", edges=()):
    root = pattern_node(tag, lcl=1)
    for index, (child_tag, axis, mspec) in enumerate(edges):
        root.add_edge(
            pattern_node(child_tag, lcl=2 + index), axis=axis, mspec=mspec
        )
    return SelectOp(APT(root, doc=doc))


class TestIntervalAlgebra:
    def test_render(self):
        assert Interval(0, 5).render() == "[0, 5]"
        assert Interval(1, None).render() == "[1, inf]"

    def test_empty(self):
        assert Interval(0, 0).empty
        assert not Interval(0, 1).empty
        assert not Interval(0, None).empty

    def test_mul_zero_annihilates_unbounded(self):
        assert _mul(0, None) == 0
        assert _mul(None, 0) == 0
        assert _mul(None, 5) is None
        assert _mul(3, 4) == 12

    def test_add_propagates_unbounded(self):
        assert _add(None, 1) is None
        assert _add(2, 3) == 5


class TestSelectBounds:
    def test_leaf_select_bounded_by_tag_count(self):
        plan = select("person")
        analysis = bound_plan(plan, STATS)
        assert analysis.bound_of(plan) == Interval(0, 100)

    def test_required_pc_child_anchors_the_parent(self):
        # each name determines its person, so the bound is the child's
        # count, not person x name
        plan = select("person", edges=[("name", "pc", "-")])
        analysis = bound_plan(plan, STATS)
        assert analysis.bound_of(plan) == Interval(0, 100)

    def test_optional_child_adds_the_absent_case(self):
        plan = select("person", edges=[("age", "ad", "?")])
        analysis = bound_plan(plan, STATS)
        assert analysis.bound_of(plan) == Interval(0, 100 * 41)

    def test_nested_children_do_not_multiply(self):
        plan = select("person", edges=[("age", "ad", "*")])
        analysis = bound_plan(plan, STATS)
        assert analysis.bound_of(plan) == Interval(0, 100)

    def test_required_nested_empty_child_zeroes_the_branch(self):
        plan = select("person", edges=[("phone", "ad", "+")])
        analysis = bound_plan(plan, STATS)
        assert analysis.bound_of(plan).empty

    def test_unloaded_document_is_unbounded(self):
        plan = select("person", doc="missing.xml")
        analysis = bound_plan(plan, STATS)
        assert analysis.bound_of(plan).hi is None

    def test_without_stats_no_diagnostics(self):
        analysis = bound_plan(select("person", doc="missing.xml"))
        assert analysis.diagnostics == []


class TestDiagnostics:
    def test_lc301_fires_on_provably_empty_tag(self):
        analysis = bound_plan(select("phone"), STATS)
        assert [d.code for d in analysis.diagnostics] == [EMPTY_BRANCH]

    def test_lc301_reported_once_at_the_source(self):
        plan = FilterOp(
            ClassPredicate(1, "!=", ""),
            mode="ALO",
            input_op=select("phone"),
        )
        analysis = bound_plan(plan, STATS)
        assert [d.code for d in analysis.diagnostics] == [EMPTY_BRANCH]

    def test_lc302_fires_when_bound_becomes_unbounded(self):
        analysis = bound_plan(select("person", doc="missing.xml"), STATS)
        assert [d.code for d in analysis.diagnostics] == [
            CARDINALITY_BLOWUP
        ]

    def test_lc302_fires_on_explosive_join(self):
        plan = JoinOp(
            select("person"),
            select("name"),
            predicates=[JoinPredicate(1, "=", 2)],
            root_lcl=9,
            right_mspec="-",
        )
        analysis = bound_plan(plan, STATS, blowup_factor=1)
        codes = [d.code for d in analysis.diagnostics]
        assert codes == [CARDINALITY_BLOWUP]
        assert "join output bound" in analysis.diagnostics[0].message

    def test_same_join_clean_with_default_headroom(self):
        plan = JoinOp(
            select("person"),
            select("name"),
            predicates=[JoinPredicate(1, "=", 2)],
            root_lcl=9,
            right_mspec="-",
        )
        analysis = bound_plan(plan, STATS)
        assert analysis.diagnostics == []


class TestTransfer:
    def test_union_adds(self):
        plan = UnionOp([select("person"), select("age")])
        analysis = bound_plan(plan, STATS)
        assert analysis.bound_of(plan) == Interval(0, 140)

    def test_filter_keeps_upper_drops_lower(self):
        plan = FilterOp(
            ClassPredicate(1, "!=", ""),
            mode="ALO",
            input_op=select("person"),
        )
        analysis = bound_plan(plan, STATS)
        assert analysis.bound_of(plan) == Interval(0, 100)

    def test_outer_join_preserves_left_bound(self):
        plan = JoinOp(
            select("person"),
            select("age"),
            predicates=[JoinPredicate(1, "=", 2)],
            root_lcl=9,
            right_mspec="*",
        )
        analysis = bound_plan(plan, STATS)
        assert analysis.bound_of(plan) == Interval(0, 100)


class TestLintPlanIntegration:
    def test_report_carries_bounds_and_diagnostics(self):
        report = lint_plan(select("phone"), stats=STATS)
        rendered = report.annotated_plan()
        assert "card [0, 0]" in rendered
        assert "LC301" in rendered

    def test_warnings_do_not_break_ok(self):
        report = lint_plan(select("phone"), stats=STATS)
        assert report.ok  # LC3xx are warnings, not errors


@pytest.mark.parametrize("name", ["x10", "x11", "x12"])
def test_join_heavy_queries_get_finite_bounds(name, xmark_engine):
    from repro.rewrites.pipeline import optimize_plan
    from repro.xmark import QUERIES
    from repro.xquery.translator import translate_query

    stats = CardinalityStats.from_database(xmark_engine.db)
    translation = optimize_plan(
        translate_query(QUERIES[name].text), verify=False
    )
    analysis = bound_plan(translation.plan, stats)
    assert analysis.diagnostics == [], [
        d.render() for d in analysis.diagnostics
    ]
    assert analysis.bound_of(translation.plan).hi is not None
