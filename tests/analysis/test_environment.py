"""Unit tests for the LC-flow environment and its merge semantics."""

from repro.analysis.environment import (
    ClassInfo,
    LCEnv,
    merge_join,
    merge_union,
)


def info(label, producer=1, parent=None, known=False, origin="select"):
    return ClassInfo(
        label,
        producer,
        f"op{producer}",
        origin,
        parent_label=parent,
        parent_known=known,
    )


class TestLCEnv:
    def test_basic_queries(self):
        env = LCEnv({1: info(1), 2: info(2, parent=1, known=True)})
        assert env.has(1) and env.has(2) and not env.has(3)
        assert env.labels() == {1, 2}
        assert env.info(2).parent_label == 1
        assert env.info(99) is None

    def test_copy_is_independent(self):
        env = LCEnv({1: info(1)}, frozenset({1}))
        clone = env.copy()
        clone.classes[2] = info(2)
        clone.shadowed = frozenset()
        assert not env.has(2)
        assert env.shadowed == frozenset({1})

    def test_descendants_transitive(self):
        env = LCEnv(
            {
                1: info(1),
                2: info(2, parent=1, known=True),
                3: info(3, parent=2, known=True),
                4: info(4, parent=None),
            }
        )
        assert {i.label for i in env.descendants_of(1)} == {2, 3}
        assert {i.label for i in env.descendants_of(2)} == {3}
        assert env.descendants_of(4) == []

    def test_descendants_cycle_guard(self):
        # a provenance cycle must not hang the walk
        env = LCEnv(
            {
                1: info(1, parent=2, known=True),
                2: info(2, parent=1, known=True),
            }
        )
        assert {i.label for i in env.descendants_of(1)} == {2}

    def test_reparented(self):
        original = info(5, parent=1, known=True)
        moved = original.reparented(9)
        assert moved.parent_label == 9 and moved.parent_known
        assert original.parent_label == 1  # frozen: copy, not mutation


class TestMerges:
    def test_join_merge_disjoint(self):
        env, conflicts = merge_join(
            LCEnv({1: info(1)}), LCEnv({2: info(2, producer=2)})
        )
        assert env.labels() == {1, 2}
        assert conflicts == []

    def test_join_merge_shared_subplan_is_clean(self):
        shared = info(1, producer=7)
        _, conflicts = merge_join(LCEnv({1: shared}), LCEnv({1: shared}))
        assert conflicts == []

    def test_join_merge_conflict(self):
        _, conflicts = merge_join(
            LCEnv({1: info(1, producer=7)}), LCEnv({1: info(1, producer=8)})
        )
        assert len(conflicts) == 1
        existing, incoming = conflicts[0]
        assert (existing.producer, incoming.producer) == (7, 8)

    def test_join_merge_unions_shadows(self):
        env, _ = merge_join(
            LCEnv({1: info(1)}, frozenset({1})),
            LCEnv({2: info(2, producer=2)}, frozenset({2})),
        )
        assert env.shadowed == frozenset({1, 2})

    def test_union_merge_never_conflicts(self):
        env = merge_union(
            [
                LCEnv({1: info(1, producer=7)}),
                LCEnv({1: info(1, producer=8)}),
            ]
        )
        assert env.info(1).producer == 7  # first branch wins
