"""Each diagnostic rule against a hand-built plan that violates it."""

import pytest

from repro.analysis import (
    BAD_FLATTEN_SITE,
    DEAD_CLASS,
    DUPLICATE_LABEL,
    JOIN_SIDE_MISMATCH,
    MALFORMED_OPERATOR,
    SHADOWED_REF,
    UNDEFINED_REF,
    Severity,
    analyze,
    lint_plan,
)
from repro.core import (
    AggregateOp,
    ConstructOp,
    DedupOp,
    FilterOp,
    FlattenOp,
    IlluminateOp,
    JoinOp,
    ProjectOp,
    SelectOp,
    ShadowOp,
    UnionOp,
)
from repro.core.base import ClassPredicate, JoinPredicate
from repro.core.construct import CClassRef, CElement
from repro.patterns import APT, pattern_node


def select(*tag_lcls, doc="auction.xml"):
    """A Select over a pc-chain of (tag, lcl) pairs."""
    root = pattern_node(tag_lcls[0][0], tag_lcls[0][1])
    current = root
    for tag, lcl in tag_lcls[1:]:
        node = pattern_node(tag, lcl)
        current.add_edge(node, "pc", "-")
        current = node
    return SelectOp(APT(root, doc))


def people() -> SelectOp:
    return select(("site", 1), ("people", 2), ("person", 3))


def codes(plan):
    return [d.code for d in analyze(plan).diagnostics]


class TestUndefinedRef:
    def test_filter_on_unknown_class(self):
        plan = FilterOp(ClassPredicate(99, "=", "x"), "E", people())
        assert codes(plan) == [UNDEFINED_REF]

    def test_project_on_unknown_class(self):
        plan = ProjectOp([3, 42], people())
        assert codes(plan) == [UNDEFINED_REF]

    def test_construct_splicing_unknown_class(self):
        plan = ConstructOp(
            CElement("out", 9, children=[CClassRef(55)]), people()
        )
        assert UNDEFINED_REF in codes(plan)

    def test_join_ref_missing_on_both_sides(self):
        plan = JoinOp(
            people(),
            select(("site", 4), ("regions", 5)),
            [JoinPredicate(77, "=", 5)],
            root_lcl=9,
        )
        assert codes(plan) == [UNDEFINED_REF]

    def test_clean_plan_has_no_diagnostics(self):
        plan = FilterOp(ClassPredicate(3, "=", "x"), "E", people())
        assert codes(plan) == []


class TestDuplicateLabel:
    def test_two_producers_of_one_label_conflict_at_join(self):
        plan = JoinOp(
            people(),
            select(("site", 4), ("regions", 3)),  # 3 again, other select
            [JoinPredicate(3, "=", 3)],
            root_lcl=9,
        )
        assert DUPLICATE_LABEL in codes(plan)

    def test_shared_subplan_is_not_a_conflict(self):
        shared = people()
        plan = JoinOp(shared, shared, [JoinPredicate(3, "=", 3)], root_lcl=9)
        assert DUPLICATE_LABEL not in codes(plan)

    def test_union_branches_may_share_labels(self):
        plan = UnionOp(
            [people(), select(("site", 1), ("people", 2), ("person", 3))]
        )
        assert DUPLICATE_LABEL not in codes(plan)


class TestShadowedRef:
    def test_aggregate_over_shadowed_class(self):
        plan = AggregateOp("count", 3, 7, ShadowOp(2, 3, people()))
        found = codes(plan)
        assert SHADOWED_REF in found

    def test_filter_over_shadowed_class(self):
        plan = FilterOp(
            ClassPredicate(3, "=", "x"), "E", ShadowOp(2, 3, people())
        )
        assert SHADOWED_REF in codes(plan)

    def test_illuminate_clears_the_shadow(self):
        plan = FilterOp(
            ClassPredicate(3, "=", "x"),
            "E",
            IlluminateOp(3, ShadowOp(2, 3, people())),
        )
        assert codes(plan) == []

    def test_project_may_pass_shadowed_classes(self):
        plan = ProjectOp([2], ShadowOp(2, 3, people()))
        assert codes(plan) == []


class TestBadFlattenSite:
    def test_flatten_child_not_under_parent(self):
        # class 3 nests under 2, not under 1
        plan = FlattenOp(1, 3, people())
        assert codes(plan) == [BAD_FLATTEN_SITE]

    def test_flatten_inverted_pair(self):
        plan = FlattenOp(3, 2, people())
        assert codes(plan) == [BAD_FLATTEN_SITE]

    def test_shadow_checked_the_same_way(self):
        plan = ShadowOp(1, 3, people())
        assert codes(plan) == [BAD_FLATTEN_SITE]

    def test_correct_site_is_clean(self):
        plan = FlattenOp(2, 3, people())
        assert codes(plan) == []


class TestJoinSideMismatch:
    def test_swapped_predicate_sides(self):
        plan = JoinOp(
            people(),
            select(("site", 4), ("regions", 5)),
            [JoinPredicate(5, "=", 3)],  # 5 lives right, 3 lives left
            root_lcl=9,
        )
        assert codes(plan) == [JOIN_SIDE_MISMATCH, JOIN_SIDE_MISMATCH]

    def test_correct_sides_are_clean(self):
        plan = JoinOp(
            people(),
            select(("site", 4), ("regions", 5)),
            [JoinPredicate(3, "=", 5)],
            root_lcl=9,
        )
        assert codes(plan) == []


class TestMalformedOperator:
    def test_unknown_comparison_in_filter(self):
        plan = FilterOp(ClassPredicate(3, "~~", 5), "E", people())
        assert codes(plan) == [MALFORMED_OPERATOR]

    def test_unknown_comparison_in_join_predicate(self):
        plan = JoinOp(
            people(),
            select(("site", 4), ("regions", 5)),
            [JoinPredicate(3, "~~", 5)],
            root_lcl=9,
        )
        assert codes(plan) == [MALFORMED_OPERATOR]

    def test_label_zero_consumption(self):
        plan = FilterOp(ClassPredicate(0, "=", 1), "E", people())
        assert codes(plan) == [MALFORMED_OPERATOR]

    def test_duplicate_pattern_labels(self):
        root = pattern_node("site", 1)
        root.add_edge(pattern_node("person", 1), "ad", "-")
        plan = SelectOp(APT(root, "auction.xml"))
        assert MALFORMED_OPERATOR in codes(plan)


class TestDeadClass:
    def test_unconsumed_aggregate_result(self):
        plan = UnionOp([AggregateOp("count", 3, 7, people())])
        diags = analyze(plan).diagnostics
        assert [d.code for d in diags] == [DEAD_CLASS]
        assert diags[0].severity is Severity.WARNING
        assert not diags[0].is_error

    def test_consumed_aggregate_is_clean(self):
        plan = FilterOp(
            ClassPredicate(7, ">", 1), "E", AggregateOp("count", 3, 7, people())
        )
        assert codes(plan) == []

    def test_warning_does_not_fail_lint(self):
        plan = UnionOp([AggregateOp("count", 3, 7, people())])
        assert lint_plan(plan).ok  # warnings only


class TestConstructFlow:
    def test_splice_keeps_class_markings(self):
        # the spliced class 3 (and nothing else) flows out of Construct;
        # a downstream Dedup on it must lint clean
        built = ConstructOp(
            CElement("out", 9, children=[CClassRef(3)]), people()
        )
        assert codes(DedupOp([3], input_op=built)) == []
        assert codes(DedupOp([9], input_op=built)) == []

    def test_text_only_splice_drops_markings(self):
        built = ConstructOp(
            CElement("out", 9, children=[CClassRef(3, text_only=True)]),
            people(),
        )
        assert codes(DedupOp([3], input_op=built)) == [UNDEFINED_REF]

    def test_hidden_splice_is_shadowed_at_birth(self):
        built = ConstructOp(
            CElement("out", 9, children=[CClassRef(3, hidden=True)]),
            people(),
        )
        assert codes(DedupOp([3], input_op=built)) == [SHADOWED_REF]


class TestReport:
    def test_render_lists_diagnostics_and_summary(self):
        plan = FilterOp(ClassPredicate(99, "=", "x"), "E", people())
        text = lint_plan(plan).render()
        assert "LC101" in text and "1 error" in text

    def test_clean_render(self):
        assert "clean" in lint_plan(people()).render()

    def test_annotated_plan_marks_flow_and_findings(self):
        plan = FilterOp(ClassPredicate(99, "=", "x"), "E", people())
        annotated = lint_plan(plan).annotated_plan()
        assert "reads [99]" in annotated
        assert "!! LC101" in annotated
        assert "+[1, 2, 3]" in annotated  # the select's produced labels

    def test_annotated_plan_marks_shared_subplans(self):
        shared = people()
        annotated = lint_plan(UnionOp([shared, shared])).annotated_plan()
        assert "(shared)" in annotated


class TestOperatorProtocol:
    def test_every_core_operator_reports_its_flow(self):
        sel = people()
        assert sel.lc_produced() == {1, 2, 3}
        agg = AggregateOp("count", 3, 7, sel)
        assert agg.lc_produced() == {7} and agg.lc_consumed() == {3}
        join = JoinOp(sel, sel, [JoinPredicate(3, "=", 3)], root_lcl=9)
        assert join.lc_produced() == {9} and join.lc_consumed() == {3}
        assert ProjectOp([1, 2], sel).lc_consumed() == {1, 2}
        assert FlattenOp(2, 3, sel).lc_consumed() == {2, 3}
        assert ShadowOp(2, 3, sel).lc_consumed() == {2, 3}
        assert IlluminateOp(3, sel).lc_consumed() == {3}
        assert DedupOp([3], input_op=sel).lc_consumed() == {3}
        built = ConstructOp(
            CElement("out", 9, children=[CClassRef(3)]), sel
        )
        assert built.lc_produced() == {9}
        assert built.lc_consumed() == {3}


class TestStrictExecution:
    def test_strict_run_plan_raises_with_diagnostics(self, tiny_engine):
        from repro.errors import PlanValidationError

        plan = AggregateOp("count", 3, 7, ShadowOp(2, 3, people()))
        with pytest.raises(PlanValidationError) as err:
            tiny_engine.run_plan(plan, strict=True)
        assert any(d.code == SHADOWED_REF for d in err.value.diagnostics)

    def test_strict_run_plan_passes_clean_plans(self, tiny_engine):
        result = tiny_engine.run_plan(people(), strict=True)
        assert len(result) > 0
