"""CC1xx fixture tests: each code fires on its pattern and only there."""

import textwrap

from repro.analysis.concurrency import lint_source
from repro.analysis.findings import (
    GLOBAL_MUTATION,
    GLOBAL_REBIND,
    LOCK_ORDER_CYCLE,
    UNGUARDED_ATTR_WRITE,
    UNSAFE_LAZY_INIT,
)


def lint(source, shared_attrs=False):
    return lint_source(
        textwrap.dedent(source), "fixture.py", shared_attrs=shared_attrs
    )


def codes(findings):
    return sorted(f.code for f in findings)


class TestGlobalRebind:
    def test_unguarded_global_rebind_fires(self):
        findings = lint(
            """
            _STATE = None

            def set_state(value):
                global _STATE
                _STATE = value
            """
        )
        assert codes(findings) == [GLOBAL_REBIND]
        assert findings[0].symbol == "set_state:_STATE"
        assert findings[0].line > 0

    def test_rebind_under_lock_is_clean(self):
        findings = lint(
            """
            _STATE = None

            def set_state(value):
                global _STATE
                with _state_lock:
                    _STATE = value
            """
        )
        assert findings == []

    def test_local_assignment_is_not_a_rebind(self):
        findings = lint(
            """
            def compute():
                _STATE = 1
                return _STATE
            """
        )
        assert findings == []


class TestUnguardedAttrWrite:
    SOURCE = """
        class Service:
            def __init__(self):
                self._closed = False

            def close(self):
                self._closed = True
    """

    def test_fires_only_in_shared_scope(self):
        assert codes(lint(self.SOURCE, shared_attrs=True)) == [
            UNGUARDED_ATTR_WRITE
        ]
        assert lint(self.SOURCE, shared_attrs=False) == []

    def test_constructor_writes_are_construction(self):
        findings = lint(self.SOURCE, shared_attrs=True)
        assert all("close" in f.symbol for f in findings)

    def test_write_under_lock_is_clean(self):
        findings = lint(
            """
            class Service:
                def close(self):
                    with self._lock:
                        self._closed = True
            """,
            shared_attrs=True,
        )
        assert findings == []

    def test_sharded_lock_idiom_is_recognised(self):
        findings = lint(
            """
            class Registry:
                def bump(self, i):
                    with self._locks[i]:
                        self._counts[i] = self._counts[i] + 1
            """,
            shared_attrs=True,
        )
        assert findings == []

    def test_locked_suffix_convention(self):
        findings = lint(
            """
            class Registry:
                def _describe_locked(self, name):
                    self._help[name] = name
            """,
            shared_attrs=True,
        )
        assert findings == []

    def test_nested_function_does_not_inherit_the_lock(self):
        # the nested def runs later, when the with-block has exited
        findings = lint(
            """
            class Service:
                def submit(self):
                    with self._lock:
                        def later():
                            self._state = "done"
                        return later
            """,
            shared_attrs=True,
        )
        assert codes(findings) == [UNGUARDED_ATTR_WRITE]


class TestLockOrderCycle:
    def test_opposite_nesting_orders_fire(self):
        findings = lint(
            """
            def forward():
                with a_lock:
                    with b_lock:
                        pass

            def backward():
                with b_lock:
                    with a_lock:
                        pass
            """
        )
        assert codes(findings) == [LOCK_ORDER_CYCLE]
        assert findings[0].symbol == "a_lock<->b_lock"

    def test_consistent_order_is_clean(self):
        findings = lint(
            """
            def one():
                with a_lock:
                    with b_lock:
                        pass

            def two():
                with a_lock:
                    with b_lock:
                        pass
            """
        )
        assert findings == []


class TestUnsafeLazyInit:
    def test_check_then_set_fires(self):
        findings = lint(
            """
            class Index:
                def rows(self):
                    if self._cache is None:
                        self._cache = self._build()
                    return self._cache
            """
        )
        assert codes(findings) == [UNSAFE_LAZY_INIT]
        assert findings[0].symbol == "Index.rows:_cache"

    def test_not_form_fires(self):
        findings = lint(
            """
            class Index:
                def rows(self):
                    if not self._cache:
                        self._cache = self._build()
                    return self._cache
            """
        )
        assert codes(findings) == [UNSAFE_LAZY_INIT]

    def test_lazy_init_under_lock_is_clean(self):
        findings = lint(
            """
            class Index:
                def rows(self):
                    with self._lock:
                        if self._cache is None:
                            self._cache = self._build()
                    return self._cache
            """
        )
        assert findings == []

    def test_plain_branch_without_assignment_is_clean(self):
        findings = lint(
            """
            class Index:
                def rows(self):
                    if self._cache is None:
                        raise RuntimeError("not built")
                    return self._cache
            """
        )
        assert findings == []


class TestGlobalMutation:
    def test_mutator_call_fires(self):
        findings = lint(
            """
            _REGISTRY = {}

            def register(name, value):
                _REGISTRY.update({name: value})
            """
        )
        assert codes(findings) == [GLOBAL_MUTATION]

    def test_subscript_write_fires(self):
        findings = lint(
            """
            _REGISTRY = {}

            def register(name, value):
                _REGISTRY[name] = value
            """
        )
        assert codes(findings) == [GLOBAL_MUTATION]

    def test_mutation_under_lock_is_clean(self):
        findings = lint(
            """
            _REGISTRY = {}

            def register(name, value):
                with _registry_lock:
                    _REGISTRY[name] = value
            """
        )
        assert findings == []

    def test_module_level_population_is_construction(self):
        # filling the container at import time is single-threaded
        findings = lint(
            """
            _REGISTRY = {}
            _REGISTRY["default"] = 1
            """
        )
        assert findings == []


class TestFindingIdentity:
    def test_key_is_line_independent(self):
        one = lint(
            """
            _S = None

            def f():
                global _S
                _S = 1
            """
        )
        moved = lint(
            """
            _S = None

            # a comment that shifts every line number


            def f():
                global _S
                _S = 1
            """
        )
        assert one[0].key == moved[0].key
        assert one[0].line != moved[0].line
