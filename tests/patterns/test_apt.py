"""Unit tests for annotated pattern tree structures."""

import pytest

from repro.errors import PatternError
from repro.patterns import APT, APTEdge, APTNode, NodeTest, pattern_node
from repro.patterns.logical_class import LCLAllocator


class TestNodeTest:
    def test_tag_match(self):
        test = NodeTest("person")
        assert test.matches("person", None)
        assert not test.matches("item", None)

    def test_wildcard(self):
        test = NodeTest(None)
        assert test.matches("anything", None)

    def test_content_comparisons(self):
        test = NodeTest("age", (( ">", 25),))
        assert test.matches("age", "30")
        assert not test.matches("age", "20")
        assert not test.matches("age", None)

    def test_with_comparison_is_pure(self):
        base = NodeTest("age")
        extended = base.with_comparison(">", 25)
        assert base.comparisons == ()
        assert extended.comparisons == ((">", 25),)

    def test_describe(self):
        assert NodeTest("age", ((">", 25),)).describe() == "age[>25]"
        assert NodeTest(None).describe() == "*"


class TestAPTStructure:
    def test_edge_validation(self):
        with pytest.raises(PatternError):
            APTEdge(pattern_node("a", 1), axis="sideways")
        with pytest.raises(PatternError):
            APTEdge(pattern_node("a", 1), mspec="!")

    def test_edge_flags(self):
        child = pattern_node("a", 1)
        assert APTEdge(child, mspec="?").optional
        assert APTEdge(child, mspec="*").optional
        assert APTEdge(child, mspec="+").nested
        assert not APTEdge(child, mspec="-").optional

    def test_walk_and_find(self):
        root = pattern_node("r", 1)
        a = pattern_node("a", 2)
        b = pattern_node("b", 3)
        root.add_edge(a)
        a.add_edge(b, "ad", "*")
        apt = APT(root, "d.xml")
        assert [n.lcl for n in apt.nodes()] == [1, 2, 3]
        assert apt.node_by_lcl(3) is b
        with pytest.raises(PatternError):
            apt.node_by_lcl(99)

    def test_clone_is_deep(self):
        root = pattern_node("r", 1)
        root.add_edge(pattern_node("a", 2), "ad", "+")
        apt = APT(root, "d.xml")
        copy = apt.clone()
        copy.root.edges[0].child.test = NodeTest("changed")
        assert apt.root.edges[0].child.test.tag == "a"
        assert copy.root.edges[0].mspec == "+"

    def test_validate_rejects_duplicate_lcls(self):
        root = pattern_node("r", 1)
        root.add_edge(pattern_node("a", 1))
        with pytest.raises(PatternError):
            APT(root).validate()

    def test_validate_rejects_inner_references(self):
        root = pattern_node("r", 1)
        root.add_edge(pattern_node(None, 2, lc_ref=5))
        with pytest.raises(PatternError):
            APT(root).validate()

    def test_lcls_excludes_references(self):
        root = pattern_node(None, 0, lc_ref=5)
        root.add_edge(pattern_node("a", 2))
        assert APT(root).lcls() == [2]

    def test_describe_renders_axes_and_mspecs(self):
        root = pattern_node("r", 1)
        root.add_edge(pattern_node("a", 2), "ad", "+")
        text = APT(root, "d.xml").describe()
        assert "//+" in text
        assert "[lcl=2]" in text


class TestLCLAllocator:
    def test_monotonic(self):
        allocator = LCLAllocator()
        assert allocator.allocate() == 1
        assert allocator.allocate() == 2

    def test_reserve(self):
        allocator = LCLAllocator()
        allocator.reserve(10)
        assert allocator.allocate() == 11

    def test_reserve_below_high_water_is_noop(self):
        allocator = LCLAllocator(start=5)
        allocator.reserve(2)
        assert allocator.allocate() == 5
