"""Unit tests for database-backed APT matching (Definition 3)."""

import pytest

from repro.errors import PatternError
from repro.patterns import APT, PatternMatcher, pattern_node


@pytest.fixture
def matcher(tiny_db):
    return PatternMatcher(tiny_db)


def auction_pattern(mspec: str) -> APT:
    """doc_root//open_auction with a bidder edge under ``mspec``."""
    root = pattern_node("doc_root", 1)
    auction = pattern_node("open_auction", 2)
    bidder = pattern_node("bidder", 3)
    root.add_edge(auction, "ad", "-")
    auction.add_edge(bidder, "pc", mspec)
    return APT(root, "auction.xml")


class TestMatchingSpecifications:
    """The four mSpec semantics of Definition 1, against 3/1/0 bidders."""

    def test_dash_multiplies_and_drops(self, matcher):
        result = matcher.match(auction_pattern("-"))
        # a1 has 3 bidders, a2 has 1, a3 has 0 -> 4 witness trees
        assert len(result) == 4
        for tree in result:
            assert len(tree.nodes_in_class(3)) == 1

    def test_question_multiplies_and_keeps(self, matcher):
        result = matcher.match(auction_pattern("?"))
        # 3 + 1 + (a3 passes with empty class)
        assert len(result) == 5
        empties = [t for t in result if not t.nodes_in_class(3)]
        assert len(empties) == 1

    def test_plus_nests_and_drops(self, matcher):
        result = matcher.match(auction_pattern("+"))
        assert len(result) == 2
        sizes = sorted(len(t.nodes_in_class(3)) for t in result)
        assert sizes == [1, 3]

    def test_star_nests_and_keeps(self, matcher):
        result = matcher.match(auction_pattern("*"))
        assert len(result) == 3
        sizes = sorted(len(t.nodes_in_class(3)) for t in result)
        assert sizes == [0, 1, 3]


class TestAxes:
    def test_pc_vs_ad(self, matcher):
        # age is under profile: pc from person fails, ad succeeds
        root = pattern_node("doc_root", 1)
        person = pattern_node("person", 2)
        age = pattern_node("age", 3)
        root.add_edge(person, "ad", "-")
        person.add_edge(age, "pc", "-")
        assert len(matcher.match(APT(root, "auction.xml"))) == 0
        person.edges[0].axis = "ad"
        assert len(matcher.match(APT(root, "auction.xml"))) == 2

    def test_deep_ad_from_root(self, matcher):
        root = pattern_node("doc_root", 1)
        increase = pattern_node("increase", 2)
        root.add_edge(increase, "ad", "-")
        assert len(matcher.match(APT(root, "auction.xml"))) == 4


class TestPredicates:
    def test_content_predicate_via_value_index(self, matcher, tiny_db):
        root = pattern_node("doc_root", 1)
        age = pattern_node("age", 2, comparisons=((">", 25),))
        root.add_edge(age, "ad", "-")
        tiny_db.reset_metrics()
        result = matcher.match(APT(root, "auction.xml"))
        assert len(result) == 2
        assert tiny_db.metrics.index_lookups >= 1

    def test_attribute_predicate(self, matcher):
        root = pattern_node("doc_root", 1)
        pid = pattern_node("@id", 2, comparisons=(("=", "p2"),))
        root.add_edge(pid, "ad", "-")
        assert len(matcher.match(APT(root, "auction.xml"))) == 1

    def test_multiple_comparisons(self, matcher):
        root = pattern_node("doc_root", 1)
        initial = pattern_node(
            "initial", 2, comparisons=((">", 5), ("<", 60))
        )
        root.add_edge(initial, "ad", "-")
        # initial values: 10, 100, 50 -> 10 and 50 qualify
        assert len(matcher.match(APT(root, "auction.xml"))) == 2

    def test_wildcard_tag_scans(self, matcher):
        root = pattern_node("doc_root", 1)
        any_node = pattern_node(None, 2, comparisons=(("=", "Alice"),))
        root.add_edge(any_node, "ad", "-")
        result = matcher.match(APT(root, "auction.xml"))
        assert len(result) == 1
        assert result[0].nodes_in_class(2)[0].tag == "name"


class TestCrossProducts:
    def test_two_dash_edges_multiply(self, matcher):
        root = pattern_node("doc_root", 1)
        auction = pattern_node("open_auction", 2)
        bidder = pattern_node("bidder", 3)
        quantity = pattern_node("quantity", 4)
        root.add_edge(auction, "ad", "-")
        auction.add_edge(bidder, "pc", "-")
        auction.add_edge(quantity, "pc", "-")
        result = matcher.match(APT(root, "auction.xml"))
        # 3 bidders × 1 quantity + 1 × 1 = 4
        assert len(result) == 4

    def test_mixed_star_and_dash(self, matcher):
        """The Figure 7 Selection 2 shape: one nested + one flat edge."""
        root = pattern_node("doc_root", 1)
        auction = pattern_node("open_auction", 2)
        all_bidders = pattern_node("bidder", 3)
        one_bidder = pattern_node("bidder", 4)
        ref = pattern_node("@person", 5)
        root.add_edge(auction, "ad", "-")
        auction.add_edge(all_bidders, "pc", "*")
        auction.add_edge(one_bidder, "pc", "-")
        one_bidder.add_edge(ref, "ad", "-")
        result = matcher.match(APT(root, "auction.xml"))
        assert len(result) == 4  # one per (auction, bidder, @person)
        for tree in result:
            n_all = len(tree.nodes_in_class(3))
            assert n_all in (1, 3)  # the full cluster rides along
            assert len(tree.nodes_in_class(4)) == 1


class TestWitnessTrees:
    def test_isomorphic_reduction(self, matcher):
        """Logical class reduction: every class present exactly once
        (Definition 4: heterogeneous trees, homogeneous reductions)."""
        result = matcher.match(auction_pattern("*"))
        for tree in result:
            assert len(tree.nodes_in_class(1)) == 1
            assert len(tree.nodes_in_class(2)) == 1
            # class 3 varies in size but exists as a (possibly empty) set
            assert isinstance(tree.nodes_in_class(3), list)

    def test_witness_carries_values(self, matcher):
        root = pattern_node("doc_root", 1)
        name = pattern_node("name", 2)
        root.add_edge(name, "ad", "-")
        result = matcher.match(APT(root, "auction.xml"))
        values = sorted(t.nodes_in_class(2)[0].value for t in result)
        assert values == ["Alice", "Bob", "Carol"]

    def test_document_order(self, matcher):
        result = matcher.match(auction_pattern("-"))
        keys = [t.order_key for t in result]
        assert keys == sorted(keys)


class TestExtension:
    def base(self, matcher):
        return matcher.match(auction_pattern("*"))

    def test_extend_attaches_new_class(self, matcher):
        base = self.base(matcher)
        ext = pattern_node(None, 0, lc_ref=2)
        ext.add_edge(pattern_node("quantity", 9), "pc", "-")
        result = matcher.extend(APT(ext), base)
        assert len(result) == 3
        values = sorted(t.nodes_in_class(9)[0].value for t in result)
        assert values == ["1", "2", "5"]

    def test_extend_with_dash_drops_nonmatching(self, matcher):
        base = self.base(matcher)
        ext = pattern_node(None, 0, lc_ref=2)
        ext.add_edge(pattern_node("reserve", 9), "pc", "-")
        result = matcher.extend(APT(ext), base)
        assert len(result) == 1  # only a2 has a reserve

    def test_extend_with_star_keeps_all(self, matcher):
        base = self.base(matcher)
        ext = pattern_node(None, 0, lc_ref=2)
        ext.add_edge(pattern_node("reserve", 9), "pc", "*")
        result = matcher.extend(APT(ext), base)
        assert len(result) == 3

    def test_extend_multiplies_on_dash(self, matcher):
        base = self.base(matcher)
        ext = pattern_node(None, 0, lc_ref=2)
        ext.add_edge(pattern_node("bidder", 9), "pc", "-")
        result = matcher.extend(APT(ext), base)
        assert len(result) == 4  # 3 + 1; a3 dropped

    def test_extend_requires_reference(self, matcher):
        base = self.base(matcher)
        with pytest.raises(PatternError):
            matcher.extend(auction_pattern("-"), base)

    def test_match_rejects_reference_root(self, matcher):
        ext = pattern_node(None, 0, lc_ref=2)
        with pytest.raises(PatternError):
            matcher.match(APT(ext, "auction.xml"))

    def test_original_trees_not_mutated(self, matcher):
        base = self.base(matcher)
        before = [t.canonical() for t in base]
        ext = pattern_node(None, 0, lc_ref=2)
        ext.add_edge(pattern_node("quantity", 9), "pc", "-")
        matcher.extend(APT(ext), base)
        assert [t.canonical() for t in base] == before
