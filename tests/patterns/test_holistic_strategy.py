"""Unit tests for the holistic match strategy in the pattern matcher."""

import pytest

from repro.errors import PatternError
from repro.patterns import APT, PatternMatcher, pattern_node
from repro.patterns.match import _holistic_eligible
from repro.storage import Database
from repro.xmark import load_xmark


@pytest.fixture(scope="module")
def xmark_db():
    db = Database()
    load_xmark(db, factor=0.002)
    return db


def dash_pattern() -> APT:
    """doc_root//open_auction with bidder(-) and quantity(-)."""
    root = pattern_node("doc_root", 1)
    auction = pattern_node("open_auction", 2)
    bidder = pattern_node("bidder", 3)
    quantity = pattern_node("quantity", 4)
    root.add_edge(auction, "ad", "-")
    auction.add_edge(bidder, "pc", "-")
    auction.add_edge(quantity, "pc", "-")
    return APT(root, "auction.xml")


class TestEligibility:
    def test_dash_only_is_eligible(self):
        assert _holistic_eligible(dash_pattern().root)

    def test_nested_edges_ineligible(self):
        apt = dash_pattern()
        apt.root.edges[0].child.edges[0].mspec = "*"
        assert not _holistic_eligible(apt.root)

    def test_predicates_ineligible(self):
        apt = dash_pattern()
        node = apt.root.edges[0].child.edges[1].child
        node.test = node.test.with_comparison(">", 2)
        assert not _holistic_eligible(apt.root)

    def test_unknown_strategy_rejected(self, xmark_db):
        with pytest.raises(PatternError):
            PatternMatcher(xmark_db, strategy="psychic")


class TestEquivalence:
    def test_same_witnesses_both_strategies(self, xmark_db):
        binary = PatternMatcher(xmark_db, strategy="binary")
        holistic = PatternMatcher(xmark_db, strategy="holistic")
        a = sorted(
            repr(t.canonical(False))
            for t in binary.match(dash_pattern())
        )
        b = sorted(
            repr(t.canonical(False))
            for t in holistic.match(dash_pattern())
        )
        assert a == b and a

    def test_holistic_output_in_document_order(self, xmark_db):
        holistic = PatternMatcher(xmark_db, strategy="holistic")
        result = holistic.match(dash_pattern())
        keys = [t.order_key for t in result]
        assert keys == sorted(keys)

    def test_witness_classes_marked(self, xmark_db):
        holistic = PatternMatcher(xmark_db, strategy="holistic")
        result = holistic.match(dash_pattern())
        for tree in result:
            assert len(tree.nodes_in_class(2)) == 1
            assert len(tree.nodes_in_class(3)) == 1
            assert len(tree.nodes_in_class(4)) == 1

    def test_ineligible_falls_back_to_binary(self, xmark_db):
        apt = dash_pattern()
        apt.root.edges[0].child.edges[0].mspec = "*"
        binary = PatternMatcher(xmark_db).match(apt.clone())
        holistic = PatternMatcher(
            xmark_db, strategy="holistic"
        ).match(apt.clone())
        assert sorted(
            repr(t.canonical(False)) for t in binary
        ) == sorted(repr(t.canonical(False)) for t in holistic)
