"""Unit and engine-level tests for the query-scoped ScanCache."""

import pytest

from repro import Engine
from repro.patterns.scan_cache import Candidates, ScanCache
from repro.storage.stats import Metrics
from tests.conftest import TINY_AUCTION

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)


class TestScanCache:
    def test_builds_on_miss_and_shares_on_hit(self):
        cache = ScanCache()
        built = []

        def build():
            built.append(1)
            return Candidates([1, 2, 3])

        first = cache.candidates(("doc", "tag", ()), build)
        second = cache.candidates(("doc", "tag", ()), build)
        assert first is second
        assert built == [1]
        assert len(cache) == 1

    def test_distinct_keys_do_not_collide(self):
        cache = ScanCache()
        a = cache.candidates(("doc", "a", ()), lambda: Candidates([1]))
        b = cache.candidates(("doc", "b", ()), lambda: Candidates([2]))
        assert a != b
        assert len(cache) == 2

    def test_hits_are_metered(self):
        metrics = Metrics()
        cache = ScanCache(metrics)
        key = ("doc", "tag", ())
        cache.candidates(key, lambda: Candidates())
        assert metrics.scan_cache_hits == 0
        cache.candidates(key, lambda: Candidates())
        cache.candidates(key, lambda: Candidates())
        assert metrics.scan_cache_hits == 2

    def test_clear_makes_cache_cold(self):
        cache = ScanCache()
        key = ("doc", "tag", ())
        first = cache.candidates(key, lambda: Candidates([1]))
        cache.clear()
        assert len(cache) == 0
        second = cache.candidates(key, lambda: Candidates([1]))
        assert first is not second


class TestCandidates:
    def test_columns_start_unset(self):
        candidates = Candidates([1, 2])
        assert candidates.starts is None
        assert candidates.levels is None
        assert list(candidates) == [1, 2]

    def test_slots_reject_arbitrary_attributes(self):
        candidates = Candidates()
        with pytest.raises(AttributeError):
            candidates.extra = 1


class TestEngineIntegration:
    @pytest.fixture
    def engine(self):
        instance = Engine()
        instance.load_xml("auction.xml", TINY_AUCTION)
        return instance

    def test_cached_and_uncached_results_identical(self, engine):
        cached = [t.to_xml() for t in engine.run(QUERY)]
        uncached = [t.to_xml() for t in engine.run(QUERY, scan_cache=False)]
        assert cached == uncached

    def test_cache_is_query_scoped(self, engine):
        """A fresh Context gets a fresh cache: runs do not warm each other."""
        engine.db.reset_metrics()
        engine.run(QUERY)
        first = engine.db.metrics.index_lookups
        engine.db.reset_metrics()
        engine.run(QUERY)
        assert engine.db.metrics.index_lookups == first

    def test_cache_never_increases_work(self, engine):
        engine.db.reset_metrics()
        engine.run(QUERY, scan_cache=False)
        uncached = engine.db.metrics.snapshot()
        engine.db.reset_metrics()
        engine.run(QUERY)
        cached = engine.db.metrics.snapshot()
        for counter in (
            "index_lookups",
            "index_entries_scanned",
            "nodes_touched",
            "pages_read",
        ):
            assert cached.get(counter, 0) <= uncached.get(counter, 0)
