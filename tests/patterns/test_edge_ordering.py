"""Unit tests for selectivity-based edge ordering (reference [19])."""

import pytest

from repro.patterns import APT, PatternMatcher, pattern_node
from repro.xmark import load_xmark
from repro.storage import Database


def star_pattern() -> APT:
    """open_auction with three mandatory children of varying selectivity."""
    root = pattern_node("doc_root", 1)
    auction = pattern_node("open_auction", 2)
    bidder = pattern_node("bidder", 3)  # many candidates
    quantity = pattern_node("quantity", 4)  # one per auction
    reserve = pattern_node("reserve", 5)  # ~half the auctions
    root.add_edge(auction, "ad", "-")
    auction.add_edge(bidder, "pc", "-")
    auction.add_edge(quantity, "pc", "-")
    auction.add_edge(reserve, "pc", "-")
    return APT(root, "auction.xml")


@pytest.fixture(scope="module")
def xmark_db():
    db = Database()
    load_xmark(db, factor=0.002)
    return db


class TestEquivalence:
    def test_same_witnesses_both_orders(self, xmark_db):
        plain = PatternMatcher(xmark_db, order_edges=False)
        ordered = PatternMatcher(xmark_db, order_edges=True)
        a = sorted(
            repr(t.canonical(False)) for t in plain.match(star_pattern())
        )
        b = sorted(
            repr(t.canonical(False)) for t in ordered.match(star_pattern())
        )
        assert a == b

    def test_slot_order_restored(self, xmark_db):
        """Witness children must follow the pattern's edge order, not the
        processing order."""
        ordered = PatternMatcher(xmark_db, order_edges=True)
        result = ordered.match(star_pattern())
        assert len(result) > 0
        for tree in result:
            auction = tree.nodes_in_class(2)[0]
            tags = [c.tag for c in auction.children]
            assert tags == ["bidder", "quantity", "reserve"]

    def test_mixed_mspecs_equivalent(self, xmark_db):
        root = pattern_node("doc_root", 1)
        auction = pattern_node("open_auction", 2)
        root.add_edge(auction, "ad", "-")
        auction.add_edge(pattern_node("bidder", 3), "pc", "*")
        auction.add_edge(pattern_node("reserve", 4), "pc", "-")
        auction.add_edge(pattern_node("privacy", 5), "pc", "?")
        apt = APT(root, "auction.xml")
        plain = PatternMatcher(xmark_db).match(apt)
        ordered = PatternMatcher(xmark_db, order_edges=True).match(apt)
        assert sorted(repr(t.canonical(False)) for t in plain) == sorted(
            repr(t.canonical(False)) for t in ordered
        )


class TestOrderingEffect:
    def test_mandatory_edges_run_first(self, xmark_db):
        matcher = PatternMatcher(xmark_db, order_edges=True)
        root = pattern_node("doc_root", 1)
        auction = pattern_node("open_auction", 2)
        root.add_edge(auction, "ad", "-")
        optional = auction.add_edge(pattern_node("bidder", 3), "pc", "*")
        mandatory = auction.add_edge(pattern_node("reserve", 4), "pc", "-")
        plan = matcher._edge_plan(auction, "auction.xml")
        assert plan[0] is mandatory
        assert plan[-1] is optional

    def test_cheapest_mandatory_first(self, xmark_db):
        matcher = PatternMatcher(xmark_db, order_edges=True)
        auction = pattern_node("open_auction", 2)
        many = auction.add_edge(pattern_node("bidder", 3), "pc", "-")
        few = auction.add_edge(pattern_node("reserve", 4), "pc", "-")
        plan = matcher._edge_plan(auction, "auction.xml")
        index = xmark_db.tag_index("auction.xml")
        assert index.count("reserve") < index.count("bidder")
        assert plan[0] is few

    def test_single_edge_untouched(self, xmark_db):
        matcher = PatternMatcher(xmark_db, order_edges=True)
        auction = pattern_node("open_auction", 2)
        only = auction.add_edge(pattern_node("bidder", 3), "pc", "-")
        assert matcher._edge_plan(auction, "auction.xml") == [only]
