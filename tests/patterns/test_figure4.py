"""Reproduction of the Figure 4 matching semantics (E4 in DESIGN.md).

An annotated pattern with ``+`` edges clusters sibling matches into one
witness tree (heterogeneity in width), while a ``?`` edge both multiplies
witness trees per optional match and lets through trees with no match at
all (heterogeneity in height) — the two behaviours the figure illustrates.
"""

from repro.model import TNode, XTree
from repro.patterns import APT, match_in_tree, pattern_node


def figure4_pattern() -> APT:
    """B with A(+)//E(+) and C(-)/D(?) children."""
    b = pattern_node("B", 1)
    a = pattern_node("A", 2)
    e = pattern_node("E", 3)
    c = pattern_node("C", 4)
    d = pattern_node("D", 5)
    b.add_edge(a, "pc", "+")
    a.add_edge(e, "ad", "+")
    b.add_edge(c, "pc", "-")
    c.add_edge(d, "pc", "?")
    return APT(b)


def first_input_tree() -> XTree:
    """B1 with A1(E1), A2(E2, E3), C1(D1, D2)."""
    b1 = TNode("B")
    a1 = b1.add_child(TNode("A", "A1"))
    a1.add_child(TNode("E", "E1"))
    a2 = b1.add_child(TNode("A", "A2"))
    deep = a2.add_child(TNode("X"))  # E under A via a deeper level (ad)
    deep.add_child(TNode("E", "E2"))
    a2.add_child(TNode("E", "E3"))
    c1 = b1.add_child(TNode("C", "C1"))
    c1.add_child(TNode("D", "D1"))
    c1.add_child(TNode("D", "D2"))
    return XTree(b1)


def second_input_tree() -> XTree:
    """B2 with A3(E4) and C3 — no D anywhere."""
    b2 = TNode("B")
    a3 = b2.add_child(TNode("A", "A3"))
    a3.add_child(TNode("E", "E4"))
    b2.add_child(TNode("C", "C3"))
    return XTree(b2)


class TestFigure4:
    def test_first_tree_yields_two_witnesses(self):
        """Two D matches under the ? edge -> two witness trees."""
        result = match_in_tree(figure4_pattern(), first_input_tree())
        assert len(result) == 2
        d_values = sorted(t.nodes_in_class(5)[0].value for t in result)
        assert d_values == ["D1", "D2"]

    def test_plus_edges_cluster_siblings(self):
        """A1, A2 (and E2, E3) are clustered into every witness tree."""
        result = match_in_tree(figure4_pattern(), first_input_tree())
        for tree in result:
            a_values = sorted(n.value for n in tree.nodes_in_class(2))
            assert a_values == ["A1", "A2"]
            e_values = sorted(n.value for n in tree.nodes_in_class(3))
            assert e_values == ["E1", "E2", "E3"]

    def test_second_tree_let_through_without_d(self):
        """The ? edge lets the D-less input through (Figure 4's note)."""
        result = match_in_tree(figure4_pattern(), second_input_tree())
        assert len(result) == 1
        assert result[0].nodes_in_class(5) == []
        assert result[0].nodes_in_class(4)[0].value == "C3"

    def test_reduction_is_homogeneous(self):
        """Every witness has exactly one node set per pattern class."""
        pattern = figure4_pattern()
        for tree in (first_input_tree(), second_input_tree()):
            for witness in match_in_tree(pattern, tree):
                assert len(witness.nodes_in_class(1)) == 1
                assert len(witness.nodes_in_class(4)) == 1
                assert len(witness.nodes_in_class(2)) >= 1

    def test_plus_drops_hosts_without_match(self):
        """B without any A is rejected when the edge is +."""
        lone = XTree(TNode("B"))
        lone.root.add_child(TNode("C", "Cx"))
        assert len(match_in_tree(figure4_pattern(), lone)) == 0

    def test_mandatory_c_edge_drops(self):
        """B without C is rejected (the - edge)."""
        lone = XTree(TNode("B"))
        a = lone.root.add_child(TNode("A", "Ax"))
        a.add_child(TNode("E", "Ex"))
        assert len(match_in_tree(figure4_pattern(), lone)) == 0
