"""Unit tests for the TAX baseline's characteristic behaviours."""

from repro.core import Context, DedupOp, JoinOp, ProjectOp, evaluate
from repro.baselines.ops import GroupByOp
from repro.baselines.tax import translate_tax
from repro.xquery import translate_query

SIMPLE = (
    'FOR $p IN document("auction.xml")//person '
    "RETURN <o>{$p/name/text()}</o>"
)

COUNTING = (
    'FOR $o IN document("auction.xml")//open_auction '
    "WHERE count($o/bidder) > 2 "
    "RETURN <x>{$o/quantity/text()}</x>"
)


def ops_of(plan, op_type):
    return [op for op in plan.walk() if isinstance(op, op_type)]


class TestPlanStructure:
    def test_early_materialization_projection(self):
        plan = translate_tax(SIMPLE).plan
        projects = ops_of(plan, ProjectOp)
        assert any(p.with_subtrees for p in projects)

    def test_dedup_follows_source_projection(self):
        plan = translate_tax(SIMPLE).plan
        assert ops_of(plan, DedupOp)

    def test_return_path_stitched_by_id_join(self):
        plan = translate_tax(SIMPLE).plan
        joins = ops_of(plan, JoinOp)
        assert any(
            pred.by_id for join in joins for pred in join.predicates
        )

    def test_aggregate_uses_grouping_branch(self):
        plan = translate_tax(COUNTING).plan
        assert ops_of(plan, GroupByOp)

    def test_flat_patterns_only(self):
        from repro.core import SelectOp

        plan = translate_tax(COUNTING).plan
        for op in ops_of(plan, SelectOp):
            for node in op.apt.nodes():
                for edge in node.edges:
                    assert edge.mspec in ("-", "?")


class TestCostProfile:
    def test_tax_touches_more_data_than_tlc(self, tiny_db):
        """Early materialization costs I/O (Section 6.3)."""
        ctx = Context(tiny_db)
        evaluate(translate_query(SIMPLE).plan, ctx)
        tlc_touches = tiny_db.metrics.nodes_touched
        tiny_db.reset_metrics()
        evaluate(translate_tax(SIMPLE).plan, Context(tiny_db))
        assert tiny_db.metrics.nodes_touched > tlc_touches

    def test_tax_matches_tlc_results(self, tiny_db):
        tlc = evaluate(translate_query(COUNTING).plan, Context(tiny_db))
        tax = evaluate(translate_tax(COUNTING).plan, Context(tiny_db))
        assert sorted(repr(t.canonical(True)) for t in tlc) == sorted(
            repr(t.canonical(True)) for t in tax
        )
