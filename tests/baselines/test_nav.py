"""Unit tests for the navigational evaluator."""

import pytest

from repro.baselines.nav import NavEvaluator
from repro.core import Context, evaluate
from repro.errors import EvaluationError
from repro.xquery import translate_query


class TestBasics:
    def test_simple_query(self, tiny_db):
        result = NavEvaluator(tiny_db).run(
            'FOR $p IN document("auction.xml")//person '
            "RETURN <o>{$p/name/text()}</o>"
        )
        assert sorted(t.to_xml() for t in result) == [
            "<o>Alice</o>", "<o>Bob</o>", "<o>Carol</o>",
        ]

    def test_where_filtering(self, tiny_db):
        result = NavEvaluator(tiny_db).run(
            'FOR $p IN document("auction.xml")//person '
            "WHERE $p//age > 25 RETURN $p/name"
        )
        assert len(result) == 2

    def test_count_predicate(self, tiny_db):
        result = NavEvaluator(tiny_db).run(
            'FOR $o IN document("auction.xml")//open_auction '
            "WHERE count($o/bidder) > 2 RETURN $o/quantity"
        )
        assert len(result) == 1
        assert result[0].root.value == "5"

    def test_value_join_is_nested_loop(self, tiny_db):
        tiny_db.reset_metrics()
        result = NavEvaluator(tiny_db).run(
            'FOR $p IN document("auction.xml")//person '
            'FOR $o IN document("auction.xml")//open_auction '
            "WHERE $p/@id = $o/bidder//@person "
            "RETURN <hit>{$p/name/text()}</hit>"
        )
        assert len(result) == 3  # (p1,a1), (p3,a1), (p3,a2)
        assert tiny_db.metrics.navigation_steps > 0
        assert tiny_db.metrics.structural_joins == 0
        assert tiny_db.metrics.index_lookups == 0

    def test_quantifiers(self, tiny_db):
        every = NavEvaluator(tiny_db).run(
            'FOR $o IN document("auction.xml")//open_auction '
            "WHERE EVERY $i IN $o/bidder/increase SATISFIES $i > 2 "
            "RETURN $o/quantity"
        )
        # a1 passes (3,25,7), a2 fails (1), a3 passes vacuously
        assert len(every) == 2
        some = NavEvaluator(tiny_db).run(
            'FOR $o IN document("auction.xml")//open_auction '
            "WHERE SOME $i IN $o/bidder/increase SATISFIES $i > 20 "
            "RETURN $o/quantity"
        )
        assert len(some) == 1

    def test_nested_let(self, tiny_db):
        result = NavEvaluator(tiny_db).run(
            'FOR $p IN document("auction.xml")//person '
            'LET $a := FOR $o IN document("auction.xml")//open_auction '
            "          WHERE $p/@id = $o/bidder//@person "
            "          RETURN <t/> "
            "RETURN <n c={count($a)}>{$p/name/text()}</n>"
        )
        counts = sorted(
            (t.root.value, t.root.children[0].value) for t in result
        )
        assert counts == [("Alice", "1"), ("Bob", "0"), ("Carol", "2")]

    def test_order_by(self, tiny_db):
        result = NavEvaluator(tiny_db).run(
            'FOR $o IN document("auction.xml")//open_auction '
            "ORDER BY $o/initial Descending RETURN $o/initial"
        )
        values = [float(t.root.value) for t in result]
        assert values == [100.0, 50.0, 10.0]

    def test_unbound_variable(self, tiny_db):
        with pytest.raises(EvaluationError):
            NavEvaluator(tiny_db).run(
                'FOR $a IN document("auction.xml")//person '
                "WHERE $b/y = 1 RETURN $a"
            )


class TestAgainstTLC:
    QUERIES = (
        'FOR $p IN document("auction.xml")//person RETURN $p/name',
        'FOR $o IN document("auction.xml")//open_auction '
        "WHERE $o/initial >= 50 RETURN <r>{$o/initial/text()}</r>",
        'FOR $o IN document("auction.xml")//open_auction '
        "RETURN <c>{count($o/bidder)}</c>",
    )

    def test_results_match_tlc(self, tiny_db):
        for query in self.QUERIES:
            tlc = evaluate(translate_query(query).plan, Context(tiny_db))
            nav = NavEvaluator(tiny_db).run(query)
            assert sorted(
                repr(t.canonical(True)) for t in tlc
            ) == sorted(repr(t.canonical(True)) for t in nav), query
