"""Unit tests for the baseline restructuring operators."""

from repro.baselines.ops import GroupByOp, MergeOp, NestJoinResultsOp
from repro.core import Context
from repro.core.base import Operator
from repro.model import NodeId, TNode, TreeSequence, XTree


class Const(Operator):
    name = "Const"

    def __init__(self, sequence):
        super().__init__([])
        self.sequence = sequence

    def execute(self, ctx, inputs):
        return self.sequence


def flat_tree(auction_start: int, bid_value) -> XTree:
    auction = TNode(
        "auction", None, NodeId(0, auction_start, auction_start + 50, 2), [1]
    )
    auction.add_child(
        TNode("bid", bid_value,
              NodeId(0, auction_start + 1, auction_start + 2, 3), [2])
    )
    return XTree(auction)


def join_root_tree(person_start: int, right_values) -> XTree:
    root = TNode("join_root", lcls=[9])
    person = TNode(
        "person", None, NodeId(0, person_start, person_start + 5, 2), [1]
    )
    root.add_child(person)
    for value in right_values:
        root.add_child(TNode("t", value, lcls=[2]))
    return XTree(root)


class TestGroupByOp:
    def test_groups(self, tiny_db):
        trees = TreeSequence(
            [flat_tree(100, "a"), flat_tree(100, "b"), flat_tree(200, "c")]
        )
        # same auction identity requires equal nids
        trees[1].root.nid = trees[0].root.nid
        trees[1].invalidate()
        op = GroupByOp(1, 2, Const(trees))
        result = op.execute(Context(tiny_db), [trees])
        assert len(result) == 2
        assert len(result[0].nodes_in_class(2)) == 2

    def test_meters_groupby(self, tiny_db):
        trees = TreeSequence([flat_tree(100, "a")])
        ctx = Context(tiny_db)
        GroupByOp(1, 2).execute(ctx, [trees])
        assert ctx.metrics.groupby_ops == 1

    def test_params(self):
        assert GroupByOp(1, 2).params() == "group (1) members (2)"


class TestMergeOp:
    def test_params(self):
        left, right = Const(TreeSequence()), Const(TreeSequence())
        assert MergeOp(left, right, 1, 7).params() == "on (1) = (7)"

    def test_merge_is_identity_keyed(self, tiny_db):
        main = TreeSequence([flat_tree(100, "x")])
        branch_host = TNode("auction", None, NodeId(0, 100, 150, 2), [7])
        branch_host.add_child(TNode("count", 3, lcls=[8]))
        branch = TreeSequence([XTree(branch_host)])
        op = MergeOp(Const(main), Const(branch), 1, 7)
        result = op.execute(Context(tiny_db), [main, branch])
        assert result[0].nodes_in_class(8)[0].value == 3


class TestNestJoinResultsOp:
    def test_regroups_flat_join_output(self, tiny_db):
        trees = TreeSequence([
            join_root_tree(10, ["a"]),
            join_root_tree(10, ["b"]),
            join_root_tree(30, ["c"]),
        ])
        # same person identity for the first two
        trees[1].root.children[0].nid = trees[0].root.children[0].nid
        trees[1].invalidate()
        op = NestJoinResultsOp(1, 9, Const(trees))
        result = op.execute(Context(tiny_db), [trees])
        assert len(result) == 2
        sizes = sorted(len(t.nodes_in_class(2)) for t in result)
        assert sizes == [1, 2]

    def test_keyless_trees_dropped(self, tiny_db):
        orphan = XTree(TNode("join_root", lcls=[9]))
        op = NestJoinResultsOp(1, 9, Const(TreeSequence([orphan])))
        result = op.execute(Context(tiny_db), [TreeSequence([orphan])])
        assert len(result) == 0

    def test_params(self):
        assert NestJoinResultsOp(1, 9).params() == "by (1) root (9)"
