"""Unit tests for the GTP baseline's characteristic behaviours."""

from repro.baselines.gtp import translate_gtp
from repro.baselines.ops import GroupByOp, MergeOp
from repro.baselines.tax import translate_tax
from repro.core import Context, ProjectOp, evaluate
from repro.xquery import translate_query

COUNTING = (
    'FOR $o IN document("auction.xml")//open_auction '
    "WHERE count($o/bidder) > 2 "
    "RETURN <x>{$o/quantity/text()}</x>"
)

NESTED = '''
FOR $p IN document("auction.xml")//person
LET $a := FOR $o IN document("auction.xml")//open_auction
          WHERE $p/@id = $o/bidder//@person
          RETURN <t>{$o/quantity/text()}</t>
RETURN <r name={$p/name/text()}>{count($a)}</r>
'''


def ops_of(plan, op_type):
    return [op for op in plan.walk() if isinstance(op, op_type)]


class TestPlanStructure:
    def test_grouping_with_merge_not_join(self):
        plan = translate_gtp(COUNTING).plan
        assert ops_of(plan, GroupByOp)
        assert ops_of(plan, MergeOp)
        from repro.core import JoinOp

        id_joins = [
            join
            for join in ops_of(plan, JoinOp)
            if any(p.by_id for p in join.predicates)
        ]
        assert id_joins == []  # identity joins are TAX's vice

    def test_no_early_materialization(self):
        plan = translate_gtp(COUNTING).plan
        assert not any(p.with_subtrees for p in ops_of(plan, ProjectOp))

    def test_nested_let_regrouped(self):
        from repro.baselines.ops import NestJoinResultsOp

        plan = translate_gtp(NESTED).plan
        assert ops_of(plan, NestJoinResultsOp)


class TestCostProfile:
    def test_gtp_groups_more_than_tlc(self, tiny_db):
        """TLC nest-joins; GTP pays group-bys (Section 6.3 (i))."""
        ctx = Context(tiny_db)
        evaluate(translate_query(COUNTING).plan, ctx)
        tlc_groups = tiny_db.metrics.groupby_ops
        tiny_db.reset_metrics()
        evaluate(translate_gtp(COUNTING).plan, Context(tiny_db))
        assert tiny_db.metrics.groupby_ops > tlc_groups

    def test_gtp_cheaper_than_tax_on_materialization(self, tiny_db):
        evaluate(translate_gtp(COUNTING).plan, Context(tiny_db))
        gtp_touches = tiny_db.metrics.nodes_touched
        tiny_db.reset_metrics()
        evaluate(translate_tax(COUNTING).plan, Context(tiny_db))
        assert tiny_db.metrics.nodes_touched > gtp_touches

    def test_results_match_tlc(self, tiny_db):
        for query in (COUNTING, NESTED):
            tlc = evaluate(translate_query(query).plan, Context(tiny_db))
            gtp = evaluate(translate_gtp(query).plan, Context(tiny_db))
            assert sorted(
                repr(t.canonical(True)) for t in tlc
            ) == sorted(repr(t.canonical(True)) for t in gtp)
