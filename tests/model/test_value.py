"""Unit tests for untyped-atomic value semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.value import (
    COMPARISON_OPS,
    atomize,
    coerce_number,
    compare,
    sort_key,
)


class TestCoerceNumber:
    def test_integer_string(self):
        assert coerce_number("42") == 42.0

    def test_decimal_string(self):
        assert coerce_number("3.5") == 3.5

    def test_scientific_notation(self):
        assert coerce_number("1e3") == 1000.0

    def test_surrounding_whitespace(self):
        assert coerce_number("  7 ") == 7.0

    def test_plain_number_passthrough(self):
        assert coerce_number(25) == 25.0
        assert coerce_number(2.5) == 2.5

    def test_non_numeric_is_none(self):
        assert coerce_number("person0") is None

    def test_empty_is_none(self):
        assert coerce_number("") is None
        assert coerce_number("   ") is None

    def test_none_is_none(self):
        assert coerce_number(None) is None


class TestCompare:
    def test_numeric_comparison_of_strings(self):
        assert compare("30", ">", "25")
        assert compare("30", ">", 25)
        assert not compare("20", ">", 25)

    def test_numeric_beats_lexicographic(self):
        # lexicographically "9" > "10"; numerically it is not
        assert not compare("9", "<", "10") is False
        assert compare("9", "<", "10")

    def test_string_equality(self):
        assert compare("person0", "=", "person0")
        assert not compare("person0", "=", "person1")

    def test_mixed_falls_back_to_string(self):
        assert not compare("abc", "=", "5")

    def test_none_fails_everything(self):
        for op in COMPARISON_OPS:
            assert not compare(None, op, "x")
            assert not compare("x", op, None)
            assert not compare(None, op, None)

    def test_not_equal(self):
        assert compare("a", "!=", "b")
        assert not compare("7", "!=", "7.0")

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            compare("1", "~", "2")

    def test_less_equal_and_greater_equal(self):
        assert compare("5", "<=", "5")
        assert compare("5", ">=", "5")
        assert compare("4", "<=", "5")
        assert not compare("6", "<=", "5")


class TestAtomize:
    def test_numeric_strings_collapse(self):
        assert atomize("07") == atomize("7.0") == 7.0

    def test_plain_strings_pass(self):
        assert atomize("gold") == "gold"

    def test_none_passes(self):
        assert atomize(None) is None


class TestSortKey:
    def test_none_orders_first(self):
        assert sort_key(None) < sort_key("0") < sort_key("a")

    def test_numbers_before_strings(self):
        assert sort_key("99999") < sort_key("apple")

    def test_numeric_order(self):
        assert sort_key("2") < sort_key("10")


@given(st.floats(allow_nan=False, allow_infinity=False, width=32),
       st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_compare_matches_python_on_numbers(a, b):
    """Property: numeric strings compare exactly like Python floats."""
    assert compare(str(a), "<", str(b)) == (a < b)
    assert compare(str(a), "=", str(b)) == (a == b)


@given(st.text(max_size=20), st.text(max_size=20))
def test_compare_total_on_strings(a, b):
    """Property: exactly one of <, =, > holds for any two values."""
    outcomes = [compare(a, op, b) for op in ("<", "=", ">")]
    assert sum(outcomes) == 1


@given(st.one_of(st.none(), st.text(max_size=12),
                 st.integers(-10**6, 10**6)))
def test_sort_key_is_self_consistent(value):
    """Property: sort_key is deterministic and tuple-shaped."""
    assert sort_key(value) == sort_key(value)
    assert len(sort_key(value)) == 3


class TestContains:
    def test_substring_match(self):
        assert compare("gold rope", "contains", "gold")
        assert not compare("silver", "contains", "gold")

    def test_numbers_compared_as_text(self):
        assert compare("12.50", "contains", 2)
        assert not compare("13", "contains", 2)

    def test_none_never_contains(self):
        assert not compare(None, "contains", "x")
