"""Unit tests for tree sequences."""

from repro.model.node_id import NodeId
from repro.model.sequence import TreeSequence
from repro.model.tree import TNode, XTree


def make_tree(start: int, tag: str = "t", value=None) -> XTree:
    return XTree(TNode(tag, value, NodeId(0, start, start + 1, 1)))


class TestContainerProtocol:
    def test_iteration_and_len(self):
        seq = TreeSequence([make_tree(1), make_tree(3)])
        assert len(seq) == 2
        assert [t.root.nid.start for t in seq] == [1, 3]

    def test_indexing_and_slicing(self):
        seq = TreeSequence([make_tree(i) for i in (1, 3, 5)])
        assert seq[1].root.nid.start == 3
        sliced = seq[1:]
        assert isinstance(sliced, TreeSequence)
        assert len(sliced) == 2

    def test_bool(self):
        assert not TreeSequence()
        assert TreeSequence([make_tree(1)])

    def test_append_extend(self):
        seq = TreeSequence()
        seq.append(make_tree(1))
        seq.extend([make_tree(2), make_tree(3)])
        assert len(seq) == 3


class TestBulkHelpers:
    def test_sorted_by_root_restores_document_order(self):
        seq = TreeSequence([make_tree(9), make_tree(1), make_tree(5)])
        ordered = seq.sorted_by_root()
        assert [t.root.nid.start for t in ordered] == [1, 5, 9]
        # original untouched
        assert [t.root.nid.start for t in seq] == [9, 1, 5]

    def test_sorted_by_custom_key(self):
        seq = TreeSequence(
            [make_tree(1, value="b"), make_tree(2, value="a")]
        )
        ordered = seq.sorted_by(lambda t: t.root.value)
        assert [t.root.value for t in ordered] == ["a", "b"]

    def test_map_trees_drops_none(self):
        seq = TreeSequence([make_tree(1), make_tree(2)])
        kept = seq.map_trees(
            lambda t: t if t.root.nid.start == 2 else None
        )
        assert len(kept) == 1

    def test_roots(self):
        seq = TreeSequence([make_tree(1), make_tree(2)])
        assert [r.nid.start for r in seq.roots()] == [1, 2]

    def test_canonical_and_to_xml(self):
        seq = TreeSequence([make_tree(1, "a", "x"), make_tree(2, "b")])
        assert len(seq.canonical()) == 2
        assert seq.to_xml() == "<a>x</a>\n<b/>"
