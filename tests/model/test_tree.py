"""Unit tests for in-memory result trees and logical-class indexing."""

import pytest

from repro.errors import CardinalityError
from repro.model.node_id import NodeId
from repro.model.tree import TNode, XTree


def build_sample() -> XTree:
    """person(3) with @id(7), name(12) and two bidders(6)."""
    person = TNode("person", nid=NodeId(0, 1, 20, 1), lcls=[3])
    person.add_child(TNode("@id", "p1", NodeId(0, 2, 3, 2), [7]))
    person.add_child(TNode("name", "Alice", NodeId(0, 4, 5, 2), [12]))
    person.add_child(TNode("bidder", None, NodeId(0, 6, 7, 2), [6]))
    person.add_child(TNode("bidder", None, NodeId(0, 8, 9, 2), [6]))
    return XTree(person)


class TestTNode:
    def test_walk_is_preorder(self):
        tree = build_sample()
        tags = [n.tag for n in tree.root.walk()]
        assert tags == ["person", "@id", "name", "bidder", "bidder"]

    def test_walk_skips_shadowed_subtrees(self):
        tree = build_sample()
        tree.root.children[2].shadowed = True
        tags = [n.tag for n in tree.root.walk()]
        assert tags == ["person", "@id", "name", "bidder"]

    def test_walk_include_shadowed(self):
        tree = build_sample()
        tree.root.children[2].shadowed = True
        tags = [n.tag for n in tree.root.walk(include_shadowed=True)]
        assert tags.count("bidder") == 2

    def test_clone_preserves_everything(self):
        tree = build_sample()
        tree.root.children[3].shadowed = True
        copy = tree.root.clone()
        assert copy is not tree.root
        assert copy.canonical() == tree.root.canonical()
        assert copy.children[3].shadowed
        assert copy.children[0].lcls == {7}
        assert copy.children[0].nid == tree.root.children[0].nid

    def test_clone_is_deep(self):
        tree = build_sample()
        copy = tree.root.clone()
        copy.children[1].value = "Mallory"
        assert tree.root.children[1].value == "Alice"

    def test_canonical_by_content_ignores_ids(self):
        a = TNode("x", "1", NodeId(0, 1, 2, 0))
        b = TNode("x", "1", NodeId(0, 5, 6, 0))
        assert a.canonical(True) == b.canonical(True)
        assert a.canonical(False) != b.canonical(False)

    def test_canonical_excludes_shadowed(self):
        tree = build_sample()
        before = tree.root.canonical()
        tree.root.children[3].shadowed = True
        after = tree.root.canonical()
        assert before != after

    def test_to_xml_renders_attributes(self):
        tree = build_sample()
        xml = tree.to_xml()
        assert xml.startswith('<person id="p1">')
        assert "<name>Alice</name>" in xml
        assert xml.count("<bidder/>") == 2

    def test_to_xml_escapes(self):
        node = TNode("t", 'a<b>&"c')
        assert node.to_xml() == "<t>a&lt;b&gt;&amp;&quot;c</t>"

    def test_parent_map(self):
        tree = build_sample()
        parents = tree.root.parent_map()
        for child in tree.root.children:
            assert parents[id(child)] is tree.root

    def test_remove_child(self):
        tree = build_sample()
        name = tree.root.children[1]
        tree.root.remove_child(name)
        assert all(c.tag != "name" for c in tree.root.children)


class TestXTree:
    def test_nodes_in_class(self):
        tree = build_sample()
        assert len(tree.nodes_in_class(6)) == 2
        assert tree.nodes_in_class(12)[0].value == "Alice"

    def test_unknown_class_is_empty(self):
        tree = build_sample()
        assert tree.nodes_in_class(999) == []

    def test_shadowed_nodes_leave_the_class(self):
        tree = build_sample()
        tree.root.children[3].shadowed = True
        tree.invalidate()
        assert len(tree.nodes_in_class(6)) == 1
        assert len(tree.nodes_in_class(6, include_shadowed=True)) == 2

    def test_index_cache_invalidation(self):
        tree = build_sample()
        assert len(tree.nodes_in_class(6)) == 2
        tree.root.add_child(TNode("bidder", None, NodeId(0, 10, 11, 2), [6]))
        tree.invalidate()
        assert len(tree.nodes_in_class(6)) == 3

    def test_singleton_ok(self):
        tree = build_sample()
        assert tree.singleton(12, "Test").value == "Alice"

    def test_singleton_raises_on_many(self):
        tree = build_sample()
        with pytest.raises(CardinalityError):
            tree.singleton(6, "Test")

    def test_singleton_raises_on_empty(self):
        tree = build_sample()
        with pytest.raises(CardinalityError):
            tree.singleton(999, "Test")

    def test_order_key_follows_root(self):
        tree = build_sample()
        assert tree.order_key == tree.root.nid.order_key

    def test_clone_independent_index(self):
        tree = build_sample()
        copy = tree.clone()
        copy.root.children[3].lcls.discard(6)
        copy.invalidate()
        assert len(tree.nodes_in_class(6)) == 2
        assert len(copy.nodes_in_class(6)) == 1

    def test_multi_class_membership(self):
        tree = build_sample()
        tree.root.children[2].lcls.add(13)
        tree.invalidate()
        assert tree.nodes_in_class(13) == [tree.root.children[2]]
        assert tree.root.children[2] in tree.nodes_in_class(6)
