"""Unit and property tests for interval node ids (Section 5.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.node_id import (
    NodeId,
    TempId,
    TempIdAllocator,
    structurally_related,
)
from repro.storage import Database
from repro.storage.xml_parser import parse_xml


class TestNodeId:
    def test_containment(self):
        outer = NodeId(0, 1, 10, 0)
        inner = NodeId(0, 2, 5, 1)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_containment_is_strict(self):
        node = NodeId(0, 1, 10, 0)
        assert not node.contains(node)

    def test_cross_document_never_contains(self):
        a = NodeId(0, 1, 10, 0)
        b = NodeId(1, 2, 5, 1)
        assert not a.contains(b)

    def test_parent_requires_adjacent_level(self):
        grandparent = NodeId(0, 1, 20, 0)
        child = NodeId(0, 2, 10, 1)
        grandchild = NodeId(0, 3, 5, 2)
        assert grandparent.is_parent_of(child)
        assert not grandparent.is_parent_of(grandchild)
        assert child.is_parent_of(grandchild)

    def test_precedes_is_document_order(self):
        a = NodeId(0, 1, 10, 0)
        b = NodeId(0, 2, 5, 1)
        assert a.precedes(b)  # ancestors precede descendants
        assert not b.precedes(a)

    def test_order_key_sorts_stored_before_temp(self):
        stored = NodeId(5, 100, 200, 3)
        temp = TempId(0)
        assert stored.order_key < temp.order_key


class TestTempIds:
    def test_allocator_is_monotonic(self):
        allocator = TempIdAllocator()
        first = allocator.next()
        second = allocator.next()
        assert first.seq < second.seq
        assert first.order_key < second.order_key

    def test_reset(self):
        allocator = TempIdAllocator()
        allocator.next()
        allocator.reset()
        assert allocator.next().seq == 0

    def test_property2_waived_for_temp_ids(self):
        """Temporary ids carry no structural information."""
        stored = NodeId(0, 1, 10, 0)
        temp = TempId(3)
        assert not structurally_related(stored, temp, "ad")
        assert not structurally_related(temp, stored, "pc")


class TestStructurallyRelated:
    def test_axes(self):
        parent = NodeId(0, 1, 10, 1)
        child = NodeId(0, 2, 3, 2)
        deep = NodeId(0, 4, 5, 3)
        assert structurally_related(parent, child, "pc")
        assert structurally_related(parent, deep, "ad")
        assert not structurally_related(parent, deep, "pc")

    def test_unknown_axis_raises(self):
        node = NodeId(0, 1, 10, 1)
        with pytest.raises(ValueError):
            structurally_related(node, node, "sibling")


# ----------------------------------------------------------------------
# property: the encoding assigned by Document matches the real tree shape
# ----------------------------------------------------------------------
@st.composite
def xml_documents(draw):
    """Random small XML texts with known structure."""

    def element(depth: int) -> str:
        tag = draw(st.sampled_from("abcde"))
        if depth >= 3:
            return f"<{tag}/>"
        n_children = draw(st.integers(0, 3))
        children = "".join(element(depth + 1) for _ in range(n_children))
        return f"<{tag}>{children}</{tag}>"

    return f"<root>{element(0)}{element(0)}</root>"


@given(xml_documents())
def test_interval_encoding_matches_tree(xml_text):
    """Property: contains/is_parent_of agree with actual tree structure."""
    db = Database()
    doc = db.load_xml("t.xml", xml_text)
    # derive ground truth ancestorship from the record parent pointers
    ancestors = {}
    for idx, rec in enumerate(doc.records):
        chain = []
        current = rec.parent
        while current >= 0:
            chain.append(current)
            current = doc.records[current].parent
        ancestors[idx] = set(chain)
    for i in range(len(doc.records)):
        for j in range(len(doc.records)):
            a, b = doc.node_id(i), doc.node_id(j)
            assert a.contains(b) == (i in ancestors[j])
            assert a.is_parent_of(b) == (doc.records[j].parent == i)


@given(xml_documents())
def test_start_order_is_document_order(xml_text):
    """Property: record order (pre-order) equals start order."""
    db = Database()
    doc = db.load_xml("t.xml", xml_text)
    starts = [rec.start for rec in doc.records]
    assert starts == sorted(starts)
