"""The BENCH_9 harness: report schema, table, regression gate."""

from repro.bench import (
    PlannerReport,
    PlannerRow,
    check_planner_against_baseline,
    compare_planner,
    planner_table,
    runtime_flags,
)


def _report(speedups, reordered=(), environment=None):
    report = PlannerReport(
        factor=0.002,
        repeats=1,
        engine="tlc",
        environment=environment or {},
    )
    for i, speedup in enumerate(speedups):
        name = f"q{i}"
        report.rows.append(
            PlannerRow(
                query=name,
                static_seconds=0.01 * speedup,
                planned_seconds=0.01,
                speedup=speedup,
                reordered_sites=1 if name in reordered else 0,
            )
        )
    return report


def test_join_order_win_needs_a_reorder_and_a_speedup():
    row = PlannerRow("x9", 0.02, 0.01, 2.0, reordered_sites=1)
    assert row.join_order_win
    assert not PlannerRow("x1", 0.02, 0.01, 2.0, 0).join_order_win
    assert not PlannerRow("x12", 0.01, 0.02, 0.5, 1).join_order_win


def test_report_round_trips_through_json():
    report = _report(
        [1.2, 0.9, 1.0],
        reordered=("q0",),
        environment=runtime_flags(),
    )
    again = PlannerReport.from_json(report.to_json())
    assert again.rows == report.rows
    assert again.environment == report.environment
    assert {"cpu_count", "fast_path", "batch", "numpy", "planner"} <= set(
        again.environment
    )
    assert again.speedup_geomean() == report.speedup_geomean()
    assert again.reordered_queries() == ["q0"]
    assert again.join_order_wins() == ["q0"]


def test_planner_table_flags_wins_and_reorders():
    table = planner_table(_report([1.2, 0.9], reordered=("q0", "q1")))
    assert "join-order-win" in table
    assert "reordered" in table
    assert "geomean speedup" in table


def test_baseline_check_passes_a_matching_run():
    baseline = _report([1.1, 1.0], reordered=("q0",))
    current = _report([1.08, 1.0], reordered=("q0",))
    assert check_planner_against_baseline(current, baseline) == []


def test_baseline_check_catches_a_geomean_regression():
    baseline = _report([2.0, 2.0], reordered=("q0",))
    current = _report([1.2, 1.2], reordered=("q0",))
    findings = check_planner_against_baseline(current, baseline)
    assert any("regressed" in finding for finding in findings)


def test_baseline_check_catches_net_slower_planning():
    baseline = _report([1.0, 1.0], reordered=("q0",))
    current = _report([0.6, 0.6], reordered=("q0",))
    findings = check_planner_against_baseline(current, baseline)
    assert any("net slower" in finding for finding in findings)
    # near break-even is NOT a finding: the gate tolerates CI noise
    close = _report([0.95, 0.96], reordered=("q0",))
    findings = check_planner_against_baseline(close, baseline)
    assert not any("net slower" in finding for finding in findings)


def test_baseline_check_requires_a_join_order_win():
    baseline = _report([1.1, 1.0], reordered=("q0",))
    current = _report([1.1, 1.0])  # fast, but nothing was reordered
    findings = check_planner_against_baseline(current, baseline)
    assert any("no join-order win" in finding for finding in findings)


def test_compare_planner_measures_both_sides():
    """A two-query sweep: rows populated, environment stamped."""
    report = compare_planner(
        queries=("x1", "x9"), factor=0.001, repeats=1
    )
    assert [row.query for row in report.rows] == ["x1", "x9"]
    assert report.environment == runtime_flags()
    for row in report.rows:
        assert row.static_seconds > 0
        assert row.planned_seconds > 0
    # x9 is the documented reorder; x1 has nothing to reorder
    assert report.rows[1].reordered_sites >= 1
    assert report.rows[0].reordered_sites == 0
