"""The service bench harvests the telemetry latency histograms.

BENCH_5.json is a ``bench service`` report whose ``latency`` section
carries the service's own p50/p95/p99 per benchmark query — these
tests pin the shape of that section, its JSON round-trip and the
query-name re-keying, on a tiny two-query sweep.
"""

import pytest

from repro.bench.service_bench import (
    ServiceBenchReport,
    bench_service,
    service_table,
)

PERCENTILE_KEYS = {"count", "p50_ms", "p95_ms", "p99_ms"}


@pytest.fixture(scope="module")
def report():
    return bench_service(
        queries=["x1", "x5"], factor=0.001, repeats=2, threads=2, rounds=1
    )


class TestLatencySection:
    def test_overall_and_per_query_classes(self, report):
        assert set(report.latency) == {"all", "x1", "x5"}

    def test_entries_carry_percentiles(self, report):
        for entry in report.latency.values():
            assert PERCENTILE_KEYS <= set(entry)
            assert entry["count"] > 0
            assert (
                entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
            )

    def test_all_counts_every_request(self, report):
        # warm-up + cold/warm samples + the batch, for each query
        per_query = 2 * report.repeats + 3
        assert report.latency["all"]["count"] == 2 * per_query
        assert report.latency["x1"]["count"] == per_query

    def test_json_round_trip(self, report):
        back = ServiceBenchReport.from_json(report.to_json())
        assert back.latency == report.latency

    def test_old_reports_load_without_latency(self, report):
        text = report.to_json().replace('"latency"', '"latency_gone"')
        assert ServiceBenchReport.from_json(text).latency == {}

    def test_table_renders_percentile_line(self, report):
        assert "service latency over" in service_table(report)
        assert "p95" in service_table(report)
