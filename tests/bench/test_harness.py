"""Unit tests for the benchmark harness and reporting."""

import math

import pytest

from repro.bench import (
    Harness,
    counters_table,
    figure15_speedups,
    figure15_table,
    figure16_breakdown,
    figure16_table,
    figure17_table,
    linear_r2,
    operator_breakdown,
)
from repro.storage.stats import QueryReport


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestHarness:
    def test_engine_cached_per_factor(self, harness):
        assert harness.engine_for(0.001) is harness.engine_for(0.001)

    def test_run_query_reports_counters(self, harness):
        report = harness.run_query("x1", "tlc", factor=0.001)
        assert report.query == "x1"
        assert report.engine == "tlc"
        assert report.seconds > 0
        assert report.counters["index_lookups"] >= 1

    def test_repeats_drop_extremes(self, harness):
        report = harness.run_query("x1", "tlc", 0.001, repeats=5)
        assert report.seconds > 0

    def test_optimized_run(self, harness):
        report = harness.run_query(
            "Q1", "tlc", 0.001, optimize=True
        )
        assert report.engine == "tlc+opt"

    def test_figure16_pairs(self, harness):
        reports = harness.figure16(factor=0.001, queries=("x5",))
        assert [r.engine for r in reports] == ["tlc", "tlc+opt"]

    def test_figure17_tags_factor(self, harness):
        reports = harness.figure17(
            factors=(0.001,), queries=("x1",)
        )
        assert reports[0].counters["factor"] == 0.001

    def test_figure15_subset(self, harness):
        reports = harness.figure15(
            factor=0.001, queries=("x1",), engines=("tlc", "nav")
        )
        assert len(reports) == 2

    def test_run_query_trace_optin(self, harness):
        report = harness.run_query("x1", "tlc", factor=0.001, trace=True)
        assert report.trace is not None
        assert report.trace.root.output_card == report.result_trees
        # default stays untraced
        assert harness.run_query("x1", "tlc", factor=0.001).trace is None

    def test_run_query_trace_ignored_for_nav(self, harness):
        report = harness.run_query("x1", "nav", factor=0.001, trace=True)
        assert report.trace is None
        assert report.result_trees > 0

    def test_figure16_trace_and_breakdown(self, harness):
        reports = harness.figure16(
            factor=0.001, queries=("x5",), trace=True
        )
        assert all(r.trace is not None for r in reports)
        text = figure16_breakdown(reports)
        assert "x5: self time per operator" in text
        # the Shadow rewrite introduces operators the plain plan lacks
        assert "Shadow" in text or "Flatten" in text

    def test_figure15_trace_optin(self, harness):
        reports = harness.figure15(
            factor=0.001, queries=("x1",), engines=("tlc", "gtp"),
            trace=True,
        )
        assert all(r.trace is not None for r in reports)
        assert "# self " in operator_breakdown(reports[0])


class TestReporting:
    def rows(self):
        return [
            QueryReport("tlc", "x1", 0.01, {"pages_read": 3}, 1),
            QueryReport("gtp", "x1", 0.02, {"pages_read": 5}, 1),
            QueryReport("tax", "x1", 0.05, {}, 1),
            QueryReport("nav", "x1", float("nan"), {}, 0),
        ]

    def test_figure15_table_renders(self):
        table = figure15_table(self.rows())
        assert "x1" in table
        assert "DNF" in table  # the NaN row
        assert "TLC" in table

    def test_speedups(self):
        text = figure15_speedups(self.rows())
        assert "2.0x" in text
        assert "5.0x" in text

    def test_figure16_table(self):
        reports = [
            QueryReport("tlc", "Q1", 0.04, {}, 1),
            QueryReport("tlc+opt", "Q1", 0.02, {}, 1),
        ]
        table = figure16_table(reports)
        assert "2.00x" in table

    def test_figure17_table_and_r2(self):
        reports = [
            QueryReport("tlc", "x5", 0.01, {"factor": 0.001}, 1),
            QueryReport("tlc", "x5", 0.02, {"factor": 0.002}, 1),
            QueryReport("tlc", "x5", 0.04, {"factor": 0.004}, 1),
        ]
        table = figure17_table(reports)
        assert "R²" in table
        assert "x5" in table

    def test_linear_r2_perfect_line(self):
        assert linear_r2([(1, 2), (2, 4), (3, 6)]) == pytest.approx(1.0)

    def test_linear_r2_degenerate(self):
        assert math.isnan(linear_r2([(1, 1)]))

    def test_counters_table(self):
        table = counters_table(self.rows())
        assert "pages" in table
        assert "x1" in table

    def test_operator_breakdown_without_trace(self):
        text = operator_breakdown(self.rows()[0])
        assert "no trace" in text

    def test_figure16_breakdown_without_traces(self):
        text = figure16_breakdown([
            QueryReport("tlc", "Q1", 0.04, {}, 1),
            QueryReport("tlc+opt", "Q1", 0.02, {}, 1),
        ])
        assert "no traced" in text


class TestBudget:
    def test_slow_cell_not_repeated(self):
        """A first run over a tenth of the DNF budget is the result."""
        harness = Harness(budget_seconds=0.0000001)
        report = harness.run_query("x1", "tlc", factor=0.001, repeats=5)
        assert report.seconds > 0  # single cold run returned

    def test_figure15_marks_dnf(self):
        harness = Harness(budget_seconds=0.0000001)
        reports = harness.figure15(
            factor=0.001, queries=("x1",), engines=("tlc",)
        )
        assert reports[0].counters.get("dnf") is True
