"""Reproduction of Figure 11: Shadow vs Flatten, plus Illuminate."""

from repro.core import Context, FlattenOp, IlluminateOp, ShadowOp, evaluate
from repro.core.base import Operator
from repro.model import TNode, TreeSequence, XTree


class Const(Operator):
    name = "Const"

    def __init__(self, sequence):
        super().__init__([])
        self.sequence = sequence

    def execute(self, ctx, inputs):
        return self.sequence


def figure11_tree() -> XTree:
    """B1 with A = {A1, A2, A3}."""
    b1 = TNode("B", "B1", lcls=[1])
    for name in ("A1", "A2", "A3"):
        b1.add_child(TNode("A", name, lcls=[2]))
    return XTree(b1)


def fresh(op_cls, tiny_db):
    plan = op_cls(1, 2, Const(TreeSequence([figure11_tree()])))
    return evaluate(plan, Context(tiny_db))


class TestFigure11:
    def test_both_multiply_the_same_way(self, tiny_db):
        assert len(fresh(FlattenOp, tiny_db)) == 3
        assert len(fresh(ShadowOp, tiny_db)) == 3

    def test_flatten_drops_shadow_retains(self, tiny_db):
        flattened = fresh(FlattenOp, tiny_db)
        shadowed = fresh(ShadowOp, tiny_db)
        for tree in flattened:
            assert len(tree.root.children) == 1
        for tree in shadowed:
            assert len(tree.root.children) == 3  # retained, hidden
            visible = [c for c in tree.root.children if not c.shadowed]
            assert len(visible) == 1

    def test_shadowed_members_invisible_to_class_lookup(self, tiny_db):
        for tree in fresh(ShadowOp, tiny_db):
            assert len(tree.nodes_in_class(2)) == 1
            assert len(tree.nodes_in_class(2, include_shadowed=True)) == 3

    def test_each_member_gets_a_turn(self, tiny_db):
        visible = sorted(
            t.nodes_in_class(2)[0].value for t in fresh(ShadowOp, tiny_db)
        )
        assert visible == ["A1", "A2", "A3"]


class TestIlluminate:
    def test_restores_visibility(self, tiny_db):
        plan = IlluminateOp(
            2, ShadowOp(1, 2, Const(TreeSequence([figure11_tree()])))
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3  # tree count unchanged (paper's note)
        for tree in result:
            assert len(tree.nodes_in_class(2)) == 3

    def test_only_the_named_class(self, tiny_db):
        tree = figure11_tree()
        other = tree.root.add_child(TNode("X", "x", lcls=[5]))
        other.shadowed = True
        tree.invalidate()
        plan = IlluminateOp(2, Const(TreeSequence([tree])))
        result = evaluate(plan, Context(tiny_db))
        hidden = [
            n
            for n in result[0].root.walk(include_shadowed=True)
            if n.shadowed
        ]
        assert [n.tag for n in hidden] == ["X"]

    def test_subtrees_of_illuminated_nodes_are_active(self, tiny_db):
        tree = figure11_tree()
        tree.root.children[1].add_child(TNode("deep", "d"))
        tree.invalidate()
        shadow = ShadowOp(1, 2, Const(TreeSequence([tree])))
        plan = IlluminateOp(2, shadow)
        result = evaluate(plan, Context(tiny_db))
        for out in result:
            deep = [n for n in out.root.walk() if n.tag == "deep"]
            assert len(deep) == 1

    def test_input_not_mutated(self, tiny_db):
        tree = figure11_tree()
        shadow_out = evaluate(
            ShadowOp(1, 2, Const(TreeSequence([tree]))), Context(tiny_db)
        )
        hidden_before = [
            n.shadowed
            for n in shadow_out[0].root.walk(include_shadowed=True)
        ]
        evaluate(IlluminateOp(2, Const(shadow_out)), Context(tiny_db))
        hidden_after = [
            n.shadowed
            for n in shadow_out[0].root.walk(include_shadowed=True)
        ]
        assert hidden_before == hidden_after
