"""Unit tests for the Construct operator."""

from repro.core import (
    CClassRef,
    CElement,
    CText,
    ConstructOp,
    Context,
    SelectOp,
    evaluate,
)
from repro.patterns import APT, pattern_node


def person_select() -> SelectOp:
    root = pattern_node("doc_root", 1)
    person = pattern_node("person", 2)
    name = pattern_node("name", 3)
    pid = pattern_node("@id", 4)
    root.add_edge(person, "ad", "-")
    person.add_edge(name, "pc", "-")
    person.add_edge(pid, "pc", "-")
    return SelectOp(APT(root, "auction.xml"))


class TestElementConstruction:
    def test_basic_element(self, tiny_db):
        ctree = CElement(
            "who", 10, attrs=[("label", CClassRef(3, text_only=True))]
        )
        plan = ConstructOp(ctree, person_select())
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3
        assert result[0].to_xml() == '<who label="Alice"/>'
        assert 10 in result[0].root.lcls

    def test_literal_attribute_and_text(self, tiny_db):
        ctree = CElement(
            "who", 10, attrs=[("kind", "bidder")],
            children=[CText("hello")],
        )
        plan = ConstructOp(ctree, person_select())
        result = evaluate(plan, Context(tiny_db))
        assert result[0].to_xml() == '<who kind="bidder">hello</who>'

    def test_splice_materializes_subtrees(self, tiny_db):
        ctree = CElement("wrap", 10, children=[CClassRef(2)])
        plan = ConstructOp(ctree, person_select())
        result = evaluate(plan, Context(tiny_db))
        assert "<name>Alice</name>" in result[0].to_xml()

    def test_splice_preserves_class_markings(self, tiny_db):
        ctree = CElement("wrap", 10, children=[CClassRef(2)])
        plan = ConstructOp(ctree, person_select())
        result = evaluate(plan, Context(tiny_db))
        assert len(result[0].nodes_in_class(2)) == 1

    def test_splice_pays_materialization_io(self, tiny_db):
        ctx = Context(tiny_db)
        select = person_select()
        base = evaluate(select, ctx)
        tiny_db.reset_metrics()
        ConstructOp(CElement("w", 9, children=[CClassRef(2)])).execute(
            ctx, [base]
        )
        assert tiny_db.metrics.nodes_touched > 0

    def test_nested_elements(self, tiny_db):
        ctree = CElement(
            "outer", 10,
            children=[
                CElement(
                    "inner", 11,
                    children=[CClassRef(3, text_only=True)],
                )
            ],
        )
        plan = ConstructOp(ctree, person_select())
        result = evaluate(plan, Context(tiny_db))
        assert result[0].to_xml() == "<outer><inner>Alice</inner></outer>"

    def test_empty_class_attribute_is_blank(self, tiny_db):
        ctree = CElement(
            "who", 10, attrs=[("x", CClassRef(99, text_only=True))]
        )
        plan = ConstructOp(ctree, person_select())
        result = evaluate(plan, Context(tiny_db))
        assert result[0].to_xml() == '<who x=""/>'

    def test_hidden_splice_is_shadowed(self, tiny_db):
        ctree = CElement(
            "w", 10, children=[CClassRef(4, hidden=True)]
        )
        plan = ConstructOp(ctree, person_select())
        result = evaluate(plan, Context(tiny_db))
        assert result[0].to_xml() == "<w/>"  # invisible in output
        hidden = result[0].nodes_in_class(4, include_shadowed=True)
        assert len(hidden) == 1 and hidden[0].shadowed


class TestBareClassRoot:
    def test_splice_root_yields_one_tree_per_member(self, tiny_db):
        plan = ConstructOp(CClassRef(3), person_select())
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3
        assert {t.root.tag for t in result} == {"name"}

    def test_text_root(self, tiny_db):
        plan = ConstructOp(CClassRef(3, text_only=True), person_select())
        result = evaluate(plan, Context(tiny_db))
        values = sorted(t.root.value for t in result)
        assert values == ["Alice", "Bob", "Carol"]
