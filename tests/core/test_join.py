"""Unit tests for the Join operator (value joins, nest variants, order)."""

import pytest

from repro.core import Context, JoinOp, JoinPredicate, SelectOp, evaluate
from repro.errors import AlgebraError, CardinalityError
from repro.patterns import APT, pattern_node


def person_select() -> SelectOp:
    root = pattern_node("doc_root", 1)
    person = pattern_node("person", 2)
    pid = pattern_node("@id", 3)
    root.add_edge(person, "ad", "-")
    person.add_edge(pid, "pc", "-")
    return SelectOp(APT(root, "auction.xml"))


def ref_select() -> SelectOp:
    root = pattern_node("doc_root", 4)
    auction = pattern_node("open_auction", 5)
    ref = pattern_node("@person", 6)
    root.add_edge(auction, "ad", "-")
    auction.add_edge(ref, "ad", "-")
    return SelectOp(APT(root, "auction.xml"))


class TestValueJoin:
    def test_basic_equi_join(self, tiny_db):
        plan = JoinOp(
            person_select(), ref_select(),
            [JoinPredicate(3, "=", 6)], root_lcl=9,
        )
        result = evaluate(plan, Context(tiny_db))
        # bidder refs: a1 -> p1, p3, p1; a2 -> p3  => 4 pairs
        assert len(result) == 4
        for tree in result:
            assert tree.root.tag == "join_root"
            assert 9 in tree.root.lcls
            assert len(tree.root.children) == 2

    def test_cartesian_join(self, tiny_db):
        plan = JoinOp(person_select(), ref_select(), [], root_lcl=9)
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3 * 4

    def test_output_in_document_order(self, tiny_db):
        plan = JoinOp(
            person_select(), ref_select(),
            [JoinPredicate(3, "=", 6)], root_lcl=9,
        )
        result = evaluate(plan, Context(tiny_db))
        lefts = [t.root.children[0].nid.order_key for t in result]
        assert lefts == sorted(lefts)

    def test_join_root_temp_ids_ascend(self, tiny_db):
        """Property 4: fresh root ids ascend in output (document) order."""
        plan = JoinOp(
            person_select(), ref_select(),
            [JoinPredicate(3, "=", 6)], root_lcl=9,
        )
        result = evaluate(plan, Context(tiny_db))
        seqs = [t.root.nid.seq for t in result]
        assert seqs == sorted(seqs)

    def test_inputs_not_mutated(self, tiny_db):
        ctx = Context(tiny_db)
        left = person_select()
        left_result = evaluate(left, ctx)
        before = [t.canonical() for t in left_result]
        plan = JoinOp(left, ref_select(), [JoinPredicate(3, "=", 6)], 9)
        evaluate(plan, ctx)
        assert [t.canonical() for t in left_result] == before


class TestNestVariants:
    def test_star_nests_and_keeps(self, tiny_db):
        plan = JoinOp(
            person_select(), ref_select(),
            [JoinPredicate(3, "=", 6)], root_lcl=9, right_mspec="*",
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3  # one per person, Bob with no matches
        sizes = sorted(len(t.root.children) - 1 for t in result)
        assert sizes == [0, 2, 2]  # p1: a1×2 refs; p3: a1+a2; p2: none

    def test_plus_nests_and_drops(self, tiny_db):
        plan = JoinOp(
            person_select(), ref_select(),
            [JoinPredicate(3, "=", 6)], root_lcl=9, right_mspec="+",
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 2  # Bob dropped

    def test_question_outer_pairs(self, tiny_db):
        plan = JoinOp(
            person_select(), ref_select(),
            [JoinPredicate(3, "=", 6)], root_lcl=9, right_mspec="?",
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 5  # 4 pairs + Bob alone

    def test_invalid_mspec(self, tiny_db):
        with pytest.raises(AlgebraError):
            JoinOp(person_select(), ref_select(), [], 9, right_mspec="!")


class TestThetaAndContracts:
    def test_inequality_join(self, tiny_db):
        left = pattern_node("doc_root", 1)
        initial = pattern_node("initial", 2)
        left.add_edge(initial, "ad", "-")
        right = pattern_node("doc_root", 3)
        increase = pattern_node("increase", 4)
        right.add_edge(increase, "ad", "-")
        plan = JoinOp(
            SelectOp(APT(left, "auction.xml")),
            SelectOp(APT(right, "auction.xml")),
            [JoinPredicate(2, "<", 4)],
            root_lcl=9,
        )
        result = evaluate(plan, Context(tiny_db))
        # initials 10,100,50 vs increases 3,25,7,1: 10<25 only
        assert len(result) == 1

    def test_singleton_contract_enforced(self, tiny_db):
        root = pattern_node("doc_root", 1)
        auction = pattern_node("open_auction", 2)
        increase = pattern_node("increase", 3)
        root.add_edge(auction, "ad", "-")
        auction.add_edge(increase, "ad", "*")  # class 3 is a cluster
        bad_left = SelectOp(APT(root, "auction.xml"))
        plan = JoinOp(
            bad_left, ref_select(), [JoinPredicate(3, "=", 6)], 9
        )
        with pytest.raises(CardinalityError):
            evaluate(plan, Context(tiny_db))

    def test_multi_predicate_join(self, tiny_db):
        plan = JoinOp(
            person_select(), ref_select(),
            [JoinPredicate(3, "=", 6), JoinPredicate(3, "<=", 6)],
            root_lcl=9,
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 4  # second predicate holds on equal values

    def test_second_predicate_filters(self, tiny_db):
        plan = JoinOp(
            person_select(), ref_select(),
            [JoinPredicate(3, "=", 6), JoinPredicate(3, "<", 6)],
            root_lcl=9,
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 0

    def test_none_join_values_never_match(self, tiny_db):
        # class 5 (the auction element) has no content: a predicate
        # against it pairs nothing, even under '='
        plan = JoinOp(
            person_select(), ref_select(),
            [JoinPredicate(3, "=", 5)], root_lcl=9,
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 0
