"""Unit tests for the Aggregate-Function operator."""

import pytest

from repro.core import AggregateOp, Context, SelectOp, evaluate
from repro.errors import AlgebraError
from repro.patterns import APT, pattern_node


def auction_with_increases() -> SelectOp:
    root = pattern_node("doc_root", 1)
    auction = pattern_node("open_auction", 2)
    increase = pattern_node("increase", 3)
    root.add_edge(auction, "ad", "-")
    auction.add_edge(increase, "ad", "*")
    return SelectOp(APT(root, "auction.xml"))


def run(tiny_db, fname):
    plan = AggregateOp(fname, 3, 11, auction_with_increases())
    return evaluate(plan, Context(tiny_db))


class TestFunctions:
    def test_count(self, tiny_db):
        result = run(tiny_db, "count")
        counts = sorted(t.nodes_in_class(11)[0].value for t in result)
        assert counts == [0, 1, 3]

    def test_sum(self, tiny_db):
        result = run(tiny_db, "sum")
        values = [t.nodes_in_class(11)[0].value for t in result]
        assert sorted(v for v in values if v != "empty") == [1.0, 35.0]
        assert values.count("empty") == 1

    def test_avg_min_max(self, tiny_db):
        by_count = {
            len(t.nodes_in_class(3)): t
            for t in run(tiny_db, "avg")
        }
        a1 = by_count[3]
        assert a1.nodes_in_class(11)[0].value == pytest.approx(35 / 3)
        a1_min = {
            len(t.nodes_in_class(3)): t for t in run(tiny_db, "min")
        }[3]
        assert a1_min.nodes_in_class(11)[0].value == 3.0
        a1_max = {
            len(t.nodes_in_class(3)): t for t in run(tiny_db, "max")
        }[3]
        assert a1_max.nodes_in_class(11)[0].value == 25.0

    def test_unknown_function_rejected(self):
        with pytest.raises(AlgebraError):
            AggregateOp("median", 1, 2)


class TestPlacement:
    def test_result_is_sibling_of_class_nodes(self, tiny_db):
        result = run(tiny_db, "count")
        nested = [t for t in result if t.nodes_in_class(3)]
        for tree in nested:
            parents = tree.root.parent_map()
            member_parent = parents.get(id(tree.nodes_in_class(3)[0]))
            agg_parent = parents.get(id(tree.nodes_in_class(11)[0]))
            # the root itself hosts both in these witness trees
            assert member_parent is agg_parent

    def test_empty_class_count_is_zero_under_root(self, tiny_db):
        """Paper: an empty class yields 0 (count) on the tree root."""
        result = run(tiny_db, "count")
        empty = [t for t in result if not t.nodes_in_class(3)]
        assert len(empty) == 1
        node = empty[0].nodes_in_class(11)[0]
        assert node.value == 0
        assert any(c is node for c in empty[0].root.children)

    def test_empty_class_other_functions_flag_empty(self, tiny_db):
        result = run(tiny_db, "max")
        empty = [
            t for t in result
            if t.nodes_in_class(11)[0].value == "empty"
        ]
        assert len(empty) == 1

    def test_input_not_mutated(self, tiny_db):
        ctx = Context(tiny_db)
        select = auction_with_increases()
        base = evaluate(select, ctx)
        before = [t.canonical() for t in base]
        evaluate(AggregateOp("count", 3, 11, select), ctx)
        assert [t.canonical() for t in base] == before

    def test_node_tagged_with_function_name(self, tiny_db):
        result = run(tiny_db, "count")
        assert result[0].nodes_in_class(11)[0].tag == "count"

    def test_no_data_access(self, tiny_db):
        """Aggregation runs on witness trees: no storage I/O."""
        ctx = Context(tiny_db)
        select = auction_with_increases()
        evaluate(select, ctx)
        tiny_db.reset_metrics()
        evaluate(AggregateOp("count", 3, 11, select), Context(tiny_db))
        # evaluation re-runs the select (fresh context) so tolerate that;
        # instead check aggregate-only work via a shared context
        ctx2 = Context(tiny_db)
        base = evaluate(select, ctx2)
        tiny_db.reset_metrics()
        AggregateOp("count", 3, 11).execute(ctx2, [base])
        assert tiny_db.metrics.nodes_touched == 0
        assert tiny_db.metrics.pages_read == 0
