"""Unit tests for the Project operator."""

from repro.core import Context, ProjectOp, SelectOp, evaluate
from repro.patterns import APT, pattern_node


def full_auction_select() -> SelectOp:
    """auction(2) with bidder(3,*), quantity(4,-), @person(5,ad *)."""
    root = pattern_node("doc_root", 1)
    auction = pattern_node("open_auction", 2)
    bidder = pattern_node("bidder", 3)
    quantity = pattern_node("quantity", 4)
    ref = pattern_node("@person", 5)
    root.add_edge(auction, "ad", "-")
    auction.add_edge(bidder, "pc", "*")
    bidder.add_edge(ref, "ad", "*")
    auction.add_edge(quantity, "pc", "-")
    return SelectOp(APT(root, "auction.xml"))


class TestProjection:
    def test_keeps_only_listed_classes(self, tiny_db):
        plan = ProjectOp([2, 4], full_auction_select())
        result = evaluate(plan, Context(tiny_db))
        for tree in result:
            assert tree.root.tag == "open_auction"
            tags = {n.tag for n in tree.root.walk()}
            assert "bidder" not in tags
            assert "quantity" in tags

    def test_hierarchy_preserved_across_gaps(self, tiny_db):
        """Dropped intermediates reattach children to retained ancestors."""
        plan = ProjectOp([2, 5], full_auction_select())
        result = evaluate(plan, Context(tiny_db))
        a1 = result[0]
        # @person nodes (below dropped bidders) hang off the auction now
        refs = a1.nodes_in_class(5)
        assert refs
        assert all(
            any(c is r for c in a1.root.children) for r in refs
        )

    def test_root_retained_when_output_is_forest(self, tiny_db):
        """Two surviving siblings force the input root to be kept."""
        plan = ProjectOp([3, 4], full_auction_select())
        result = evaluate(plan, Context(tiny_db))
        a1 = result[0]
        assert a1.root.tag == "doc_root"

    def test_single_survivor_becomes_root(self, tiny_db):
        plan = ProjectOp([4], full_auction_select())
        result = evaluate(plan, Context(tiny_db))
        assert all(t.root.tag == "quantity" for t in result)

    def test_root_in_keep_list(self, tiny_db):
        plan = ProjectOp([1, 2], full_auction_select())
        result = evaluate(plan, Context(tiny_db))
        assert all(t.root.tag == "doc_root" for t in result)

    def test_empty_projection_keeps_bare_root(self, tiny_db):
        plan = ProjectOp([999], full_auction_select())
        result = evaluate(plan, Context(tiny_db))
        assert all(not t.root.children for t in result)


class TestEarlyMaterialization:
    def test_with_subtrees_fetches_content(self, tiny_db):
        plan = ProjectOp([2], full_auction_select(), with_subtrees=True)
        result = evaluate(plan, Context(tiny_db))
        a1 = result[0]
        tags = {n.tag for n in a1.root.walk()}
        # the full stored subtree is back, including unmatched children
        assert {"bidder", "initial", "personref", "increase"} <= tags

    def test_with_subtrees_pays_io(self, tiny_db):
        ctx = Context(tiny_db)
        evaluate(ProjectOp([2], full_auction_select()), ctx)
        cheap = ctx.metrics.nodes_touched
        tiny_db.reset_metrics()
        evaluate(
            ProjectOp([2], full_auction_select(), with_subtrees=True),
            Context(tiny_db),
        )
        assert tiny_db.metrics.nodes_touched > cheap

    def test_with_subtrees_remarks_descendant_classes(self, tiny_db):
        """Witness class markings transfer onto the fetched copies."""
        plan = ProjectOp(
            [2, 5], full_auction_select(), with_subtrees=True
        )
        result = evaluate(plan, Context(tiny_db))
        a1 = result[0]
        assert a1.nodes_in_class(5)


class TestShadowInteraction:
    def test_shadowed_children_ride_through(self, tiny_db):
        ctx = Context(tiny_db)
        trees = evaluate(full_auction_select(), ctx)
        tree = trees[0]
        bidders = tree.nodes_in_class(3)
        assert bidders
        for bidder in bidders:
            bidder.shadowed = True
        tree.invalidate()
        projected = evaluate(
            ProjectOp([2, 4], _const(trees)), ctx
        )
        kept = projected[0].nodes_in_class(3, include_shadowed=True)
        assert len(kept) == len(bidders)
        assert all(n.shadowed for n in kept)


def _const(sequence):
    """A leaf operator returning a fixed sequence (test helper)."""
    from repro.core.base import Operator

    class Const(Operator):
        name = "Const"

        def execute(self, ctx, inputs):
            return sequence

    return Const()
