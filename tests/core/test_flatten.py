"""Reproduction of Figure 9: the Flatten operator's semantics."""

import pytest

from repro.core import Context, FlattenOp, evaluate
from repro.core.base import Operator
from repro.errors import AlgebraError, CardinalityError
from repro.model import TNode, TreeSequence, XTree


class Const(Operator):
    """Leaf operator returning a fixed sequence."""

    name = "Const"

    def __init__(self, sequence):
        super().__init__([])
        self.sequence = sequence

    def execute(self, ctx, inputs):
        return self.sequence


def figure9_tree() -> XTree:
    """B1 with nested classes E = {E1, E2} and A = {A1, A2}."""
    b1 = TNode("B", "B1", lcls=[1])
    b1.add_child(TNode("E", "E1", lcls=[2]))
    b1.add_child(TNode("E", "E2", lcls=[2]))
    b1.add_child(TNode("A", "A1", lcls=[3]))
    b1.add_child(TNode("A", "A2", lcls=[3]))
    return XTree(b1)


class TestFigure9:
    def test_first_flatten_doubles(self, tiny_db):
        """FL[B, E] on the nested tree gives two trees (Figure 9.b)."""
        plan = FlattenOp(1, 2, Const(TreeSequence([figure9_tree()])))
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 2
        for tree in result:
            assert len(tree.nodes_in_class(2)) == 1
            assert len(tree.nodes_in_class(3)) == 2  # A untouched

    def test_chained_flatten_gives_four(self, tiny_db):
        """FL[B, A] after FL[B, E] gives four trees (Figure 9.c)."""
        plan = FlattenOp(
            1, 3, FlattenOp(1, 2, Const(TreeSequence([figure9_tree()])))
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 4
        combos = sorted(
            (
                t.nodes_in_class(2)[0].value,
                t.nodes_in_class(3)[0].value,
            )
            for t in result
        )
        assert combos == [
            ("E1", "A1"), ("E1", "A2"), ("E2", "A1"), ("E2", "A2"),
        ]

    def test_dropped_members_lose_subtrees(self, tiny_db):
        tree = figure9_tree()
        tree.nodes_in_class(2)[0].add_child(TNode("deep", "d"))
        tree.invalidate()
        plan = FlattenOp(1, 2, Const(TreeSequence([tree])))
        result = evaluate(plan, Context(tiny_db))
        with_deep = [
            t
            for t in result
            if any(n.tag == "deep" for n in t.root.walk())
        ]
        assert len(with_deep) == 1

    def test_parent_must_be_singleton(self, tiny_db):
        tree = figure9_tree()
        tree.root.children[0].lcls.add(1)  # second member of class 1
        tree.invalidate()
        plan = FlattenOp(1, 2, Const(TreeSequence([tree])))
        with pytest.raises(CardinalityError):
            evaluate(plan, Context(tiny_db))

    def test_members_must_be_children(self, tiny_db):
        tree = figure9_tree()
        grand = tree.root.children[0].add_child(TNode("E", "E9", lcls=[2]))
        tree.invalidate()
        plan = FlattenOp(1, 2, Const(TreeSequence([tree])))
        with pytest.raises(AlgebraError):
            evaluate(plan, Context(tiny_db))

    def test_empty_class_produces_no_output(self, tiny_db):
        plan = FlattenOp(1, 99, Const(TreeSequence([figure9_tree()])))
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 0

    def test_input_not_mutated(self, tiny_db):
        tree = figure9_tree()
        before = tree.canonical()
        plan = FlattenOp(1, 2, Const(TreeSequence([tree])))
        evaluate(plan, Context(tiny_db))
        assert tree.canonical() == before
