"""Unit tests for the evaluator (memoisation) and Select's three modes."""

import pytest

from repro.core import Context, SelectOp, evaluate, evaluate_on
from repro.core.base import Operator
from repro.errors import AlgebraError
from repro.patterns import APT, pattern_node


class CountingSelect(SelectOp):
    """A select that counts how many times it executes (either form)."""

    def __init__(self, apt):
        super().__init__(apt)
        self.executions = 0

    def execute(self, ctx, inputs):
        self.executions += 1
        return super().execute(ctx, inputs)

    def execute_batch(self, ctx, inputs):
        self.executions += 1
        return super().execute_batch(ctx, inputs)


def person_apt() -> APT:
    root = pattern_node("doc_root", 1)
    root.add_edge(pattern_node("person", 2), "ad", "-")
    return APT(root, "auction.xml")


class TestEvaluator:
    def test_shared_subplan_runs_once(self, tiny_db):
        """Pattern-tree reuse: a shared operator executes exactly once."""
        from repro.core import UnionOp

        shared = CountingSelect(person_apt())
        plan = UnionOp([shared, shared])
        result = evaluate(plan, Context(tiny_db))
        assert shared.executions == 1
        assert len(result) == 6  # both union arms saw the 3 persons

    def test_evaluate_on_convenience(self, tiny_db):
        result = evaluate_on(SelectOp(person_apt()), tiny_db)
        assert len(result) == 3


class TestSelectModes:
    def test_leaf_select_requires_document(self, tiny_db):
        apt = person_apt()
        apt.doc = None
        with pytest.raises(AlgebraError):
            evaluate(SelectOp(apt), Context(tiny_db))

    def test_extension_select_requires_input(self, tiny_db):
        ext = pattern_node(None, 0, lc_ref=2)
        ext.add_edge(pattern_node("name", 9), "pc", "-")
        with pytest.raises(AlgebraError):
            evaluate(SelectOp(APT(ext)), Context(tiny_db))

    def test_in_memory_select_mode(self, tiny_db):
        """A pattern without lc_ref over an input: TAX-style matching."""
        base = SelectOp(person_apt())
        inner = pattern_node("name", 9)
        plan = SelectOp(APT(pattern_node("person", 8)), base)
        # witness trees carry only matched nodes: person has no name in
        # the witness (name wasn't part of the base pattern), so matching
        # person alone still succeeds per input tree
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3

    def test_describe_modes(self):
        leaf = SelectOp(person_apt())
        assert "doc=" in leaf.params()
        ext_root = pattern_node(None, 0, lc_ref=2)
        extension = SelectOp(APT(ext_root))
        assert "extend" in extension.params()


class TestPlanUtilities:
    def test_walk_and_describe(self, tiny_db):
        from repro.core import FilterOp, ClassPredicate

        plan = FilterOp(
            ClassPredicate(2, "=", "x"), "ALO", SelectOp(person_apt())
        )
        ops = list(plan.walk())
        assert len(ops) == 2
        text = plan.describe()
        assert "Filter" in text and "Select" in text

    def test_replace_input(self, tiny_db):
        from repro.core import FilterOp, ClassPredicate

        old = SelectOp(person_apt())
        new = SelectOp(person_apt())
        plan = FilterOp(ClassPredicate(2, "=", "x"), "ALO", old)
        plan.replace_input(old, new)
        assert plan.inputs == [new]
