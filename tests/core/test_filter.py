"""Unit tests for Filter, TreeFilter and the predicate helpers."""

import pytest

from repro.core import ClassPredicate, Context, FilterOp, SelectOp, evaluate
from repro.core.filter import (
    TreeFilterOp,
    cross_class_predicate,
    disjunctive_predicate,
)
from repro.errors import AlgebraError
from repro.patterns import APT, pattern_node


def bidder_select() -> SelectOp:
    """open_auction(2) with all bidders' increases as class 3 ('*')."""
    root = pattern_node("doc_root", 1)
    auction = pattern_node("open_auction", 2)
    increase = pattern_node("increase", 3)
    root.add_edge(auction, "ad", "-")
    auction.add_edge(increase, "ad", "*")
    return SelectOp(APT(root, "auction.xml"))


class TestModes:
    def test_every_mode(self, tiny_db):
        # a1 increases: 3, 25, 7 -> not all > 2? all are > 2.  a2: 1 fails.
        plan = FilterOp(
            ClassPredicate(3, ">", 2), "E", bidder_select()
        )
        result = evaluate(plan, Context(tiny_db))
        # a1 passes (all > 2), a2 fails (1), a3 passes vacuously (empty)
        assert len(result) == 2

    def test_every_passes_empty_class(self, tiny_db):
        """Footnote 2: Every lets through trees with an empty class."""
        plan = FilterOp(
            ClassPredicate(3, ">", 1000), "E", bidder_select()
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 1  # only the bidder-less a3

    def test_alo_mode(self, tiny_db):
        plan = FilterOp(
            ClassPredicate(3, ">", 20), "ALO", bidder_select()
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 1  # only a1 has an increase > 20

    def test_alo_rejects_empty_class(self, tiny_db):
        plan = FilterOp(
            ClassPredicate(3, ">", -1), "ALO", bidder_select()
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 2  # a3's empty class fails ALO

    def test_ex_mode(self, tiny_db):
        plan = FilterOp(
            ClassPredicate(3, ">", 5), "EX", bidder_select()
        )
        result = evaluate(plan, Context(tiny_db))
        # a1 has two increases > 5 (25, 7) -> fails EX; a2 has none
        assert len(result) == 0

    def test_ex_mode_accepts_exactly_one(self, tiny_db):
        plan = FilterOp(
            ClassPredicate(3, ">", 10), "EX", bidder_select()
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 1  # a1: only 25 exceeds 10

    def test_unknown_mode_rejected(self):
        with pytest.raises(AlgebraError):
            FilterOp(ClassPredicate(1, "=", 1), "SOMETIMES")


class TestTreeFilter:
    def test_cross_class_predicate(self, tiny_db):
        root = pattern_node("doc_root", 1)
        auction = pattern_node("open_auction", 2)
        initial = pattern_node("initial", 3)
        increase = pattern_node("increase", 4)
        root.add_edge(auction, "ad", "-")
        auction.add_edge(initial, "pc", "-")
        auction.add_edge(increase, "ad", "*")
        select = SelectOp(APT(root, "auction.xml"))
        plan = TreeFilterOp(
            cross_class_predicate(4, ">", 3), "(4) > (3)", select
        )
        result = evaluate(plan, Context(tiny_db))
        # a1: increase 25 > initial 10 -> passes; a2: 1 < 100; a3: none
        assert len(result) == 1

    def test_disjunctive_predicate(self, tiny_db):
        root = pattern_node("doc_root", 1)
        auction = pattern_node("open_auction", 2)
        reserve = pattern_node("reserve", 3)
        quantity = pattern_node("quantity", 4)
        root.add_edge(auction, "ad", "-")
        auction.add_edge(reserve, "pc", "*")
        auction.add_edge(quantity, "pc", "*")
        select = SelectOp(APT(root, "auction.xml"))
        predicate = disjunctive_predicate(
            [ClassPredicate(3, ">", 100), ClassPredicate(4, "=", 5)]
        )
        plan = TreeFilterOp(predicate, "or", select)
        result = evaluate(plan, Context(tiny_db))
        # a1 via quantity=5, a2 via reserve=150
        assert len(result) == 2


class TestFirstMode:
    def test_first_mode_checks_earliest_node(self, tiny_db):
        from repro.core import FilterOp, ClassPredicate, Context, evaluate

        # a1's first increase in document order is 3
        plan = FilterOp(ClassPredicate(3, "=", 3), "FIRST", bidder_select())
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 1

    def test_first_mode_rejects_empty_class(self, tiny_db):
        from repro.core import FilterOp, ClassPredicate, Context, evaluate

        plan = FilterOp(
            ClassPredicate(3, ">", -999), "FIRST", bidder_select()
        )
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 2  # a3 (no bidders) fails FIRST
