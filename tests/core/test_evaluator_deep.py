"""The evaluator must handle plans far deeper than the recursion limit."""

from repro.core.base import Context, Operator
from repro.core.evaluator import evaluate
from repro.model.sequence import TreeSequence
from repro.model.tree import TNode, XTree
from repro.storage.database import Database
from repro.trace import Tracer

DEPTH = 5000


class _Source(Operator):
    """Test-only leaf producing one tree."""

    name = "Source"

    def execute(self, ctx, inputs):
        return TreeSequence([XTree(TNode("leaf"))])


class _Pass(Operator):
    """Test-only pass-through operator."""

    name = "Pass"

    def __init__(self, child):
        super().__init__([child])
        self.executions = 0

    def execute(self, ctx, inputs):
        self.executions += 1
        return inputs[0]


def _chain(depth):
    plan = _Source()
    for _ in range(depth):
        plan = _Pass(plan)
    return plan


def test_deep_plan_does_not_recurse():
    plan = _chain(DEPTH)
    result = evaluate(plan, Context(Database()))
    assert len(result) == 1


def test_deep_plan_traced():
    plan = _chain(DEPTH)
    ctx = Context(Database())
    tracer = Tracer(ctx.metrics)
    evaluate(plan, ctx, tracer)
    trace = tracer.finish(plan)
    assert len(trace.records) == DEPTH + 1
    # cumulative accumulates along the whole chain, and rendering the
    # deep trace is iterative too
    assert trace.root.cumulative_seconds >= trace.records[0].self_seconds
    assert len(trace.render().splitlines()) == DEPTH + 2


def test_memo_runs_shared_sub_plans_once():
    shared = _Pass(_Source())
    left = _Pass(shared)
    right = _Pass(shared)

    class _Both(Operator):
        name = "Both"

        def execute(self, ctx, inputs):
            merged = TreeSequence()
            for seq in inputs:
                merged.extend(seq)
            return merged

    result = evaluate(_Both([left, right]), Context(Database()))
    assert shared.executions == 1
    assert len(result) == 2


def test_evaluation_order_is_post_order():
    order = []

    class _Logging(Operator):
        name = "Logging"

        def __init__(self, tag, children=()):
            super().__init__(children)
            self.tag = tag

        def execute(self, ctx, inputs):
            order.append(self.tag)
            return TreeSequence()

    a = _Logging("a")
    b = _Logging("b")
    root = _Logging("root", [a, b])
    evaluate(root, Context(Database()))
    assert order == ["a", "b", "root"]
