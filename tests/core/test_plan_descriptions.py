"""Every operator renders meaningful plan descriptions (explainability)."""

from repro.core import (
    AggregateOp,
    CClassRef,
    CElement,
    ClassPredicate,
    ConstructOp,
    DedupOp,
    FilterOp,
    FlattenOp,
    IlluminateOp,
    JoinOp,
    JoinPredicate,
    ProjectOp,
    SelectOp,
    ShadowOp,
    SortOp,
    UnionOp,
)
from repro.core.filter import TreeFilterOp
from repro.patterns import APT, pattern_node


def leaf():
    root = pattern_node("doc_root", 1)
    root.add_edge(pattern_node("person", 2), "ad", "-")
    return SelectOp(APT(root, "d.xml"))


class TestParams:
    def test_select(self):
        assert "doc='d.xml'" in leaf().params()

    def test_filter(self):
        op = FilterOp(ClassPredicate(5, ">", 2), "ALO", leaf())
        assert op.params() == "ALO (5) > 2"

    def test_tree_filter(self):
        op = TreeFilterOp(lambda t: True, "(1) = (2)", leaf())
        assert op.params() == "(1) = (2)"

    def test_join(self):
        op = JoinOp(leaf(), leaf(), [JoinPredicate(1, "=", 2)], 9, "*")
        assert "(1) = (2)" in op.params()
        assert "'*'" in op.params()

    def test_join_id_predicate(self):
        op = JoinOp(
            leaf(), leaf(), [JoinPredicate(1, "=", 2, by_id=True)], 9
        )
        assert "=id" in op.params()

    def test_project(self):
        assert ProjectOp([3, 1], leaf()).params() == "keep [1, 3]"
        assert "+subtrees" in ProjectOp(
            [1], leaf(), with_subtrees=True
        ).params()

    def test_dedup(self):
        op = DedupOp([2, 1], "id", leaf(), bases={2: "content"})
        assert "(2:content)" in op.params()

    def test_aggregate(self):
        op = AggregateOp("count", 6, 11, leaf())
        assert op.params() == "count((6)) -> (11)"

    def test_sort(self):
        assert "desc" in SortOp([4], True, leaf()).params()

    def test_flatten_shadow_illuminate(self):
        assert FlattenOp(1, 2, leaf()).params() == "(1, 2)"
        assert ShadowOp(1, 2, leaf()).params() == "(1, 2)"
        assert IlluminateOp(2, leaf()).params() == "(2)"

    def test_union(self):
        assert UnionOp([leaf(), leaf()], dedup_lcl=3).params() == "dedup (3)"

    def test_construct(self):
        ctree = CElement(
            "p", 9, attrs=[("n", CClassRef(3, text_only=True))],
            children=[CClassRef(4)],
        )
        op = ConstructOp(ctree, leaf())
        assert "<p>" in op.params()
        splice = ConstructOp(CClassRef(4, hidden=True), leaf())
        assert "splice" in splice.params()
        assert "hidden" in splice.params()

    def test_construct_tree_describe(self):
        ctree = CElement(
            "p", 9, attrs=[("n", CClassRef(3, text_only=True))],
            children=[CClassRef(4)],
        )
        text = ctree.describe()
        assert "@n=(3).text()" in text
        assert "(4)" in text


class TestDescribeTree:
    def test_full_plan_renders_nested(self):
        plan = FilterOp(ClassPredicate(2, "=", "x"), "E", leaf())
        text = plan.describe()
        lines = text.splitlines()
        assert lines[0].startswith("Filter")
        assert lines[1].startswith("  Select")
