"""Unit tests for DOT plan rendering."""

from repro.core.visualize import plan_to_dot
from repro.rewrites import share_common_selects
from repro.xquery import translate_query

QUERY = '''
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 2 AND $p/@id = $o/bidder//@person
RETURN <person name={$p/name/text()}> $o/bidder </person>
'''


class TestPlanToDot:
    def test_renders_all_operators(self):
        plan = translate_query(QUERY).plan
        dot = plan_to_dot(plan)
        assert dot.startswith("digraph plan {")
        assert dot.rstrip().endswith("}")
        for name in ("Construct", "Join", "Select", "Aggregate",
                     "Filter", "Project", "DuplicateElimination"):
            assert name in dot

    def test_edges_follow_dataflow(self):
        plan = translate_query(QUERY).plan
        dot = plan_to_dot(plan)
        assert "->" in dot
        n_ops = len(list(plan.walk()))
        assert dot.count("label=") >= n_ops  # one box per operator + title

    def test_title_escaped(self):
        plan = translate_query(QUERY).plan
        dot = plan_to_dot(plan, title='the "Q1" plan')
        assert '\\"Q1\\"' in dot

    def test_shared_subplans_render_once(self):
        query = (
            'FOR $a IN document("auction.xml")//person '
            'FOR $b IN document("auction.xml")//person '
            "RETURN <x>{$a/name/text()}</x>"
        )
        plan = translate_query(query).plan
        share_common_selects(plan)
        dot = plan_to_dot(plan)
        # one shared leaf select box feeding the join twice
        select_boxes = [
            line
            for line in dot.splitlines()
            if "Select" in line and "doc=" in line
        ]
        assert len(select_boxes) == 1
