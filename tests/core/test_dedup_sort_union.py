"""Unit tests for Duplicate-Elimination, Sort and Union."""

import pytest

from repro.core import Context, DedupOp, SelectOp, SortOp, UnionOp, evaluate
from repro.errors import CardinalityError
from repro.patterns import APT, pattern_node


def ref_select() -> SelectOp:
    """One witness per (auction, @person) pair."""
    root = pattern_node("doc_root", 1)
    auction = pattern_node("open_auction", 2)
    ref = pattern_node("@person", 3)
    root.add_edge(auction, "ad", "-")
    auction.add_edge(ref, "ad", "-")
    return SelectOp(APT(root, "auction.xml"))


def person_select() -> SelectOp:
    root = pattern_node("doc_root", 1)
    person = pattern_node("person", 2)
    name = pattern_node("name", 3)
    root.add_edge(person, "ad", "-")
    person.add_edge(name, "pc", "-")
    return SelectOp(APT(root, "auction.xml"))


class TestDedup:
    def test_id_dedup(self, tiny_db):
        # 4 (auction, ref) pairs; by auction id only a1, a2 remain
        plan = DedupOp([2], "id", ref_select())
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 2

    def test_content_dedup(self, tiny_db):
        # by @person content: (a1,p1), (a1,p3), (a2,p3)
        plan = DedupOp([2, 3], "id", ref_select(), bases={3: "content"})
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3

    def test_id_key_distinguishes_same_content(self, tiny_db):
        plan = DedupOp([2, 3], "id", ref_select())
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 4  # two distinct p1 refs in a1

    def test_first_occurrence_wins(self, tiny_db):
        plan = DedupOp([2], "id", ref_select())
        result = evaluate(plan, Context(tiny_db))
        keys = [t.order_key for t in result]
        assert keys == sorted(keys)

    def test_empty_class_contributes_null(self, tiny_db):
        plan = DedupOp([99], "id", ref_select())
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 1  # all trees share the null key

    def test_cardinality_enforced(self, tiny_db):
        root = pattern_node("doc_root", 1)
        auction = pattern_node("open_auction", 2)
        bidder = pattern_node("bidder", 3)
        root.add_edge(auction, "ad", "-")
        auction.add_edge(bidder, "pc", "*")
        plan = DedupOp([3], "id", SelectOp(APT(root, "auction.xml")))
        with pytest.raises(CardinalityError):
            evaluate(plan, Context(tiny_db))

    def test_invalid_basis_rejected(self):
        with pytest.raises(ValueError):
            DedupOp([1], by="vibes")


class TestSort:
    def test_ascending_by_value(self, tiny_db):
        plan = SortOp([3], False, person_select())
        result = evaluate(plan, Context(tiny_db))
        names = [t.nodes_in_class(3)[0].value for t in result]
        assert names == ["Alice", "Bob", "Carol"]

    def test_descending(self, tiny_db):
        plan = SortOp([3], True, person_select())
        result = evaluate(plan, Context(tiny_db))
        names = [t.nodes_in_class(3)[0].value for t in result]
        assert names == ["Carol", "Bob", "Alice"]

    def test_numeric_keys_sort_numerically(self, tiny_db):
        root = pattern_node("doc_root", 1)
        initial = pattern_node("initial", 2)
        root.add_edge(initial, "ad", "-")
        plan = SortOp([2], False, SelectOp(APT(root, "auction.xml")))
        result = evaluate(plan, Context(tiny_db))
        values = [float(t.nodes_in_class(2)[0].value) for t in result]
        assert values == [10.0, 50.0, 100.0]

    def test_missing_keys_order_first(self, tiny_db):
        root = pattern_node("doc_root", 1)
        auction = pattern_node("open_auction", 2)
        reserve = pattern_node("reserve", 3)
        root.add_edge(auction, "ad", "-")
        auction.add_edge(reserve, "pc", "*")
        plan = SortOp([3], False, SelectOp(APT(root, "auction.xml")))
        result = evaluate(plan, Context(tiny_db))
        assert result[0].nodes_in_class(3) == []


class TestUnion:
    def test_concatenates_in_document_order(self, tiny_db):
        plan = UnionOp([person_select(), ref_select()])
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3 + 4
        keys = [t.order_key for t in result]
        assert keys == sorted(keys)

    def test_dedup_by_shared_class(self, tiny_db):
        plan = UnionOp([person_select(), person_select()], dedup_lcl=2)
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3
