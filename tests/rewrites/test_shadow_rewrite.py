"""Unit tests for Shadow/Illuminate rewriting and the full pipeline."""

from repro.core import Context, SelectOp, evaluate
from repro.core.shadow import IlluminateOp, ShadowOp
from repro.rewrites import (
    apply_flatten,
    apply_illuminate,
    find_flatten_sites,
    find_illuminate_sites,
    optimize,
    share_common_selects,
)
from repro.xquery import translate_query

Q1 = '''
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 2 AND $p//age > 25
  AND $p/@id = $o/bidder//@person
RETURN <person name={$p/name/text()}> $o/bidder </person>
'''

X5 = '''
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 0 AND $o/bidder/increase > 20
RETURN <hot>{$o/bidder}</hot>
'''


def canon(sequence):
    return sorted(repr(t.canonical(True)) for t in sequence)


class TestIlluminateDetection:
    def test_q1_site_found_after_shadow(self):
        plan = translate_query(Q1).plan
        site = find_flatten_sites(plan)[0]
        plan = apply_flatten(plan, site, use_shadow=True)
        illuminate_sites = find_illuminate_sites(plan)
        assert len(illuminate_sites) == 1
        assert illuminate_sites[0].shadowed_lcl == site.nested_edge.child.lcl

    def test_no_sites_without_shadow(self):
        plan = translate_query(Q1).plan
        assert find_illuminate_sites(plan) == []


class TestIlluminateTransformation:
    def rewritten(self):
        plan = translate_query(Q1).plan
        plan = apply_flatten(
            plan, find_flatten_sites(plan)[0], use_shadow=True
        )
        return apply_illuminate(plan, find_illuminate_sites(plan)[0])

    def test_select_replaced_by_illuminate(self):
        plan = self.rewritten()
        assert any(isinstance(op, IlluminateOp) for op in plan.walk())
        refetchers = [
            op
            for op in plan.walk()
            if isinstance(op, SelectOp)
            and op.apt.root.lc_ref is not None
            and op.apt.root.edges
            and op.apt.root.edges[0].child.test.tag == "bidder"
            and not op.apt.root.edges[0].child.edges
        ]
        assert refetchers == []

    def test_construct_references_relabelled(self):
        from repro.core import CClassRef, ConstructOp

        plan = self.rewritten()
        construct = next(
            op for op in plan.walk() if isinstance(op, ConstructOp)
        )
        shadow = next(
            op for op in plan.walk() if isinstance(op, ShadowOp)
        )
        refs = [
            c
            for c in construct.ctree.children
            if isinstance(c, CClassRef)
        ]
        assert refs[0].lcl == shadow.child_lcl

    def test_projection_carries_shadowed_class(self):
        from repro.core import ProjectOp

        plan = self.rewritten()
        shadow = next(
            op for op in plan.walk() if isinstance(op, ShadowOp)
        )
        projects = [
            op for op in plan.walk() if isinstance(op, ProjectOp)
        ]
        assert any(shadow.child_lcl in p.keep_lcls for p in projects)


class TestEquivalence:
    def test_q1_shadow_illuminate_preserves_results(self, tiny_db):
        plain = evaluate(translate_query(Q1).plan, Context(tiny_db))
        plan = translate_query(Q1).plan
        plan = apply_flatten(
            plan, find_flatten_sites(plan)[0], use_shadow=True
        )
        plan = apply_illuminate(plan, find_illuminate_sites(plan)[0])
        rewritten = evaluate(plan, Context(tiny_db))
        assert canon(plain) == canon(rewritten)

    def test_pipeline_q1(self, tiny_db):
        plain = evaluate(translate_query(Q1).plan, Context(tiny_db))
        plan, log = optimize(translate_query(Q1).plan)
        assert log.shadowed and log.illuminated
        optimized = evaluate(plan, Context(tiny_db))
        assert canon(plain) == canon(optimized)

    def test_pipeline_x5(self, tiny_db):
        plain = evaluate(translate_query(X5).plan, Context(tiny_db))
        plan, log = optimize(translate_query(X5).plan)
        assert log.changed
        optimized = evaluate(plan, Context(tiny_db))
        assert canon(plain) == canon(optimized)

    def test_pipeline_saves_node_touches(self, tiny_db):
        # The query-scoped scan cache also dedups the repeated scans the
        # Shadow rewrite removes; disable it so this measures the
        # rewrite's intrinsic saving, not the cache's.
        evaluate(translate_query(Q1).plan, Context(tiny_db, scan_cache=False))
        plain_touches = tiny_db.metrics.nodes_touched
        tiny_db.reset_metrics()
        plan, _ = optimize(translate_query(Q1).plan)
        evaluate(plan, Context(tiny_db, scan_cache=False))
        assert tiny_db.metrics.nodes_touched < plain_touches

    def test_pipeline_noop_on_simple_query(self, tiny_db):
        query = ('FOR $p IN document("auction.xml")//person '
                 "RETURN <o>{$p/name/text()}</o>")
        plan, log = optimize(translate_query(query).plan)
        assert not log.flattened and not log.illuminated
        result = evaluate(plan, Context(tiny_db))
        assert len(result) == 3


class TestReuse:
    def test_identical_leaf_selects_shared(self):
        query = (
            'FOR $a IN document("auction.xml")//person '
            'FOR $b IN document("auction.xml")//person '
            "RETURN <x>{$a/name/text()}</x>"
        )
        plan = translate_query(query).plan
        eliminated = share_common_selects(plan)
        assert eliminated == 1
        leaves = {
            id(op)
            for op in plan.walk()
            if isinstance(op, SelectOp) and op.apt.root.lc_ref is None
        }
        assert len(leaves) == 1

    def test_different_patterns_not_shared(self):
        plan = translate_query(Q1).plan
        assert share_common_selects(plan) == 0
