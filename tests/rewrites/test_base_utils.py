"""Unit tests for the rewrite plan-analysis utilities."""

from repro.core import (
    AggregateOp,
    CClassRef,
    CElement,
    ClassPredicate,
    ConstructOp,
    DedupOp,
    FilterOp,
    JoinOp,
    JoinPredicate,
    ProjectOp,
    SelectOp,
    SortOp,
)
from repro.patterns import APT, pattern_node
from repro.rewrites import defined_lcls, parent_map, rename_lcl, used_lcls


def leaf():
    root = pattern_node("doc_root", 1)
    root.add_edge(pattern_node("person", 2), "ad", "-")
    return SelectOp(APT(root, "d.xml"))


class TestUsedDefined:
    def test_filter(self):
        op = FilterOp(ClassPredicate(5, ">", 1), "E", leaf())
        assert used_lcls(op) == {5}

    def test_join(self):
        op = JoinOp(leaf(), leaf(), [JoinPredicate(3, "=", 4)], 9)
        assert used_lcls(op) == {3, 4}
        assert defined_lcls(op) == {9}

    def test_aggregate(self):
        op = AggregateOp("count", 6, 11, leaf())
        assert used_lcls(op) == {6}
        assert defined_lcls(op) == {11}

    def test_select_defines_pattern_classes(self):
        op = leaf()
        assert defined_lcls(op) == {1, 2}
        assert used_lcls(op) == set()

    def test_extension_select_uses_reference(self):
        root = pattern_node(None, 0, lc_ref=7)
        root.add_edge(pattern_node("name", 12), "pc", "*")
        op = SelectOp(APT(root))
        assert used_lcls(op) == {7}

    def test_construct(self):
        ctree = CElement(
            "p", 15,
            attrs=[("n", CClassRef(12, text_only=True))],
            children=[CClassRef(13)],
        )
        op = ConstructOp(ctree, leaf())
        assert used_lcls(op) == {12, 13}
        assert defined_lcls(op) == {15}


class TestRename:
    def test_rename_in_every_operator_kind(self):
        select = leaf()
        filter_op = FilterOp(ClassPredicate(5, ">", 1), "E", select)
        rename_lcl(filter_op, 5, 50)
        assert filter_op.predicate.lcl == 50

        join = JoinOp(leaf(), leaf(), [JoinPredicate(3, "=", 4)], 9)
        rename_lcl(join, 4, 40)
        assert join.predicates[0].right_lcl == 40

        project = ProjectOp([3, 5], leaf())
        rename_lcl(project, 5, 50)
        assert project.keep_lcls == [3, 50]

        dedup = DedupOp([3], "id", leaf(), bases={3: "content"})
        rename_lcl(dedup, 3, 30)
        assert dedup.lcls == [30]
        assert dedup.bases == {30: "content"}

        sort = SortOp([7], False, leaf())
        rename_lcl(sort, 7, 70)
        assert sort.lcls == [70]

        aggregate = AggregateOp("count", 6, 11, leaf())
        rename_lcl(aggregate, 6, 60)
        assert aggregate.lcl == 60

        ctree = CElement("p", 1, children=[CClassRef(13)])
        construct = ConstructOp(ctree, leaf())
        rename_lcl(construct, 13, 31)
        assert ctree.children[0].lcl == 31

    def test_rename_untouched_labels(self):
        project = ProjectOp([3, 5], leaf())
        rename_lcl(project, 99, 100)
        assert project.keep_lcls == [3, 5]


class TestParentMap:
    def test_parent_links(self):
        select = leaf()
        filter_op = FilterOp(ClassPredicate(2, "=", "x"), "E", select)
        project = ProjectOp([2], filter_op)
        parents = parent_map(project)
        assert parents[id(select)] is filter_op
        assert parents[id(filter_op)] is project
        assert id(project) not in parents
