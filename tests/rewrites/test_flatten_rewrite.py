"""Unit tests for the Flatten rewrite (Section 4.2 / Figure 10)."""

import pytest

from repro.core import Context, FlattenOp, SelectOp, evaluate
from repro.core.shadow import ShadowOp
from repro.rewrites import apply_flatten, find_flatten_sites
from repro.xquery import translate_query

Q1 = '''
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 2 AND $p//age > 25
  AND $p/@id = $o/bidder//@person
RETURN <person name={$p/name/text()}> $o/bidder </person>
'''

X3 = '''
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 2
  AND $p/@id = $o/bidder//@person
RETURN <bid><who>{$p/name/text()}</who>{$o/initial}</bid>
'''

NO_SITE = '''
FOR $p IN document("auction.xml")//person
WHERE $p//age > 25
RETURN <out>{$p/name/text()}</out>
'''


class TestDetection:
    def test_q1_has_one_site(self):
        plan = translate_query(Q1).plan
        sites = find_flatten_sites(plan)
        assert len(sites) == 1
        site = sites[0]
        assert site.parent.test.tag == "open_auction"
        assert site.nested_edge.mspec == "*"
        assert site.flat_edge.mspec == "-"
        assert site.nested_edge.child.test.tag == "bidder"

    def test_chain_is_aggregate_then_filter(self):
        plan = translate_query(Q1).plan
        site = find_flatten_sites(plan)[0]
        names = [type(op).__name__ for op in site.chain]
        assert names == ["AggregateOp", "FilterOp"]

    def test_plain_query_has_no_site(self):
        plan = translate_query(NO_SITE).plan
        assert find_flatten_sites(plan) == []

    def test_no_site_without_shared_tag(self):
        plan = translate_query(
            'FOR $o IN document("auction.xml")//open_auction '
            "WHERE count($o/bidder) > 1 AND $o/quantity > 2 "
            "RETURN <x>{$o/initial/text()}</x>"
        ).plan
        assert find_flatten_sites(plan) == []


class TestTransformation:
    def test_pattern_loses_flat_branch(self, tiny_db):
        plan = translate_query(X3).plan
        site = find_flatten_sites(plan)[0]
        n_edges_before = len(site.parent.edges)
        plan = apply_flatten(plan, site)
        assert len(site.parent.edges) == n_edges_before - 1

    def test_flatten_op_inserted_above_chain(self, tiny_db):
        plan = translate_query(X3).plan
        site = find_flatten_sites(plan)[0]
        plan = apply_flatten(plan, site)
        flattens = [
            op for op in plan.walk() if isinstance(op, FlattenOp)
        ]
        assert len(flattens) == 1
        assert flattens[0].parent_lcl == site.parent.lcl
        assert flattens[0].child_lcl == site.nested_edge.child.lcl

    def test_extension_select_restores_join_branch(self, tiny_db):
        plan = translate_query(X3).plan
        site = find_flatten_sites(plan)[0]
        c_child_lcl = site.flat_edge.child.edges[0].child.lcl
        plan = apply_flatten(plan, site)
        extensions = [
            op
            for op in plan.walk()
            if isinstance(op, SelectOp)
            and op.apt.root.lc_ref == site.nested_edge.child.lcl
        ]
        assert len(extensions) == 1
        assert extensions[0].apt.root.edges[0].child.lcl == c_child_lcl

    def test_shadow_variant(self, tiny_db):
        plan = translate_query(Q1).plan
        site = find_flatten_sites(plan)[0]
        plan = apply_flatten(plan, site, use_shadow=True)
        shadows = [op for op in plan.walk() if isinstance(op, ShadowOp)]
        assert len(shadows) == 1

    def test_stale_site_rejected(self, tiny_db):
        from repro.errors import RewriteError

        plan = translate_query(X3).plan
        site = find_flatten_sites(plan)[0]
        apply_flatten(plan, site)
        with pytest.raises(RewriteError):
            apply_flatten(plan, site)


class TestEquivalence:
    def test_q1_results_preserved(self, tiny_db):
        plain = evaluate(translate_query(Q1).plan, Context(tiny_db))
        plan = translate_query(Q1).plan
        site = find_flatten_sites(plan)[0]
        plan = apply_flatten(plan, site)
        rewritten = evaluate(plan, Context(tiny_db))
        assert sorted(
            repr(t.canonical(True)) for t in plain
        ) == sorted(repr(t.canonical(True)) for t in rewritten)

    def test_x3_results_preserved(self, tiny_db):
        plain = evaluate(translate_query(X3).plan, Context(tiny_db))
        plan = translate_query(X3).plan
        plan = apply_flatten(plan, find_flatten_sites(plan)[0])
        rewritten = evaluate(plan, Context(tiny_db))
        assert sorted(
            repr(t.canonical(True)) for t in plain
        ) == sorted(repr(t.canonical(True)) for t in rewritten)

    def test_rewrite_eliminates_redundant_access(self, tiny_db):
        """The point of the exercise: fewer node touches (Figure 10)."""
        ctx = Context(tiny_db)
        evaluate(translate_query(X3).plan, ctx)
        plain_touches = tiny_db.metrics.nodes_touched
        tiny_db.reset_metrics()
        plan = translate_query(X3).plan
        plan = apply_flatten(plan, find_flatten_sites(plan)[0])
        evaluate(plan, Context(tiny_db))
        assert tiny_db.metrics.nodes_touched <= plain_touches
