"""The embedded telemetry HTTP server: endpoints over a real socket."""

import json
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import Engine
from repro.service import QueryService
from repro.telemetry import MetricsRegistry, TelemetryServer, use_registry
from tests.conftest import TINY_AUCTION

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
from promformat import parse_exposition  # noqa: E402

QUERY = 'FOR $p IN document("auction.xml")//person RETURN $p/name'


@pytest.fixture
def served():
    """A service with two executed queries behind a live HTTP server."""
    engine = Engine()
    engine.load_xml("auction.xml", TINY_AUCTION)
    with use_registry(MetricsRegistry()):
        with QueryService(engine, threads=2, slow_threshold=0.0) as svc:
            svc.execute(QUERY)
            svc.execute(QUERY)
            with TelemetryServer(svc) as server:
                yield server


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.read().decode("utf-8"), response.headers


class TestEndpoints:
    def test_metrics_is_valid_exposition(self, served):
        text, headers = _get(served, "/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        families = parse_exposition(text)
        assert "repro_requests_total" in families
        assert "repro_request_seconds" in families
        assert families["repro_request_seconds"].kind == "histogram"
        # work counters exported at scrape time, not per increment
        assert "repro_work_pages_read_total" in families
        assert "repro_plan_cache_size" in families

    def test_stats_reports_service_and_registry(self, served):
        text, headers = _get(served, "/stats")
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(text)
        assert payload["service"]["executed"] == 2
        assert payload["service"]["latency"]["all"]["count"] == 2
        assert "p95_ms" in payload["service"]["latency"]["all"]
        assert "counters" in payload["registry"]
        assert payload["uptime_seconds"] >= 0

    def test_healthz_is_ok(self, served):
        text, _ = _get(served, "/healthz")
        payload = json.loads(text)
        assert payload["status"] == "ok"
        assert payload["threads"] == 2

    def test_slow_ring_carries_trace(self, served):
        text, _ = _get(served, "/slow")
        payload = json.loads(text)
        assert payload["captured"] == 2
        assert payload["slow"][0]["trace"]["records"]

    def test_unknown_path_404_lists_endpoints(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(served, "/nope")
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert "/metrics" in payload["endpoints"]

    def test_double_start_rejected(self, served):
        with pytest.raises(RuntimeError):
            served.start()
