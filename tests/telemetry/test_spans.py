"""Unit tests for the span layer: recorder, store, Chrome export.

Service integration (real requests under fork/spawn) lives in
``tests/service/test_service_spans.py``; these tests pin the building
blocks — nesting semantics, the clamped cross-process merge, the dual
store rings, and the export contract ``check_chrome_trace`` verifies.
"""

import threading

import pytest

from repro.telemetry.spans import (
    SpanCapture,
    SpanRecorder,
    SpanStore,
    bind_recorder,
    check_chrome_trace,
    current_recorder,
    set_spans,
    span,
    spans_enabled,
    to_chrome_trace,
    use_spans,
)


class TestToggle:
    def test_disabled_by_default(self):
        assert spans_enabled() is False

    def test_use_spans_scopes_and_restores(self):
        with use_spans(True):
            assert spans_enabled() is True
        assert spans_enabled() is False

    def test_set_spans_returns_previous(self):
        assert set_spans(True) is False
        try:
            assert set_spans(False) is True
        finally:
            set_spans(False)


class TestRecorder:
    def test_root_request_span_opens_at_birth(self):
        recorder = SpanRecorder("abc123")
        capture = recorder.finish()
        assert capture.trace_id == "abc123"
        assert capture.spans[0].name == "request"
        assert capture.spans[0].parent is None

    def test_spans_nest_under_the_innermost_open_span(self):
        recorder = SpanRecorder()
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                pass
        capture = recorder.finish()
        spans = {s.sid: s for s in capture.spans}
        assert spans[inner].parent == outer
        assert spans[outer].parent == 0  # the request root

    def test_end_is_idempotent_and_closes_abandoned_children(self):
        recorder = SpanRecorder()
        outer = recorder.begin("outer")
        inner = recorder.begin("inner")
        recorder.end(outer)  # inner never explicitly closed
        first_end = recorder.finish().spans[inner].end
        recorder.end(inner)
        assert recorder.finish().spans[inner].end == first_end

    def test_finish_closes_everything_and_stamps_status(self):
        recorder = SpanRecorder()
        recorder.begin("open")
        capture = recorder.finish(status="error", slow=True)
        assert capture.status == "error"
        assert capture.slow is True
        assert all(s.end is not None for s in capture.spans)

    def test_timeline_is_monotonic_within_a_trace(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            pass
        with recorder.span("b"):
            pass
        capture = recorder.finish()
        a, b = capture.spans[1], capture.spans[2]
        assert a.start <= a.end <= b.start <= b.end

    def test_annotate_merges_tags(self):
        recorder = SpanRecorder()
        sid = recorder.begin("phase", tags={"engine": "tlc"})
        recorder.annotate(sid, cache_hit=True)
        recorder.end(sid)
        tags = recorder.finish().spans[sid].tags
        assert tags == {"engine": "tlc", "cache_hit": True}


class TestAddRemote:
    def test_remote_records_map_through_the_wall_clock(self):
        recorder = SpanRecorder()
        parent = recorder.begin("dispatch")
        records = [
            {
                "name": "worker",
                "start": recorder.wall0 + 0.010,
                "end": recorder.wall0 + 0.020,
            },
            {
                "name": "worker.execute",
                "start": recorder.wall0 + 0.012,
                "end": recorder.wall0 + 0.018,
                "parent": "worker",
            },
        ]
        sids = recorder.add_remote(records, parent=parent, pid=4242)
        recorder.end(parent)
        capture = recorder.finish()
        worker, execute = (capture.spans[s] for s in sids)
        assert worker.pid == 4242 and execute.pid == 4242
        assert worker.parent == parent
        # the remote parent reference resolved to the merged worker span
        assert execute.parent == worker.sid
        assert worker.start == pytest.approx(0.010, abs=5e-3)
        assert execute.seconds == pytest.approx(0.006, abs=1e-4)

    def test_window_clamps_skewed_remote_endpoints(self):
        recorder = SpanRecorder()
        parent = recorder.begin("dispatch")
        # a worker clock skewed far outside the dispatch window
        records = [
            {
                "name": "worker",
                "start": recorder.wall0 - 5.0,
                "end": recorder.wall0 + 5.0,
            }
        ]
        (sid,) = recorder.add_remote(
            records, parent=parent, pid=1, window=(0.001, 0.002)
        )
        recorder.end(parent)
        worker = recorder.finish().spans[sid]
        assert 0.001 <= worker.start <= worker.end <= 0.002


class TestThreadCurrentRecorder:
    def test_module_span_is_a_noop_without_a_recorder(self):
        assert current_recorder() is None
        with span("parse"):  # must not raise, must not record
            pass

    def test_module_span_records_on_the_bound_recorder(self):
        recorder = SpanRecorder()
        with bind_recorder(recorder):
            assert current_recorder() is recorder
            with span("parse", engine="tlc"):
                pass
        assert current_recorder() is None
        names = [s.name for s in recorder.finish().spans]
        assert "parse" in names

    def test_binding_is_thread_local(self):
        recorder = SpanRecorder()
        seen = {}

        def other_thread():
            seen["recorder"] = current_recorder()

        with bind_recorder(recorder):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["recorder"] is None


def _capture(trace_id: str, slow: bool = False) -> SpanCapture:
    recorder = SpanRecorder(trace_id)
    with recorder.span("phase"):
        pass
    return recorder.finish(slow=slow)


class TestSpanStore:
    def test_put_get_roundtrip(self):
        store = SpanStore()
        capture = _capture("t1")
        store.put(capture)
        assert store.get("t1") is capture
        assert store.get("missing") is None
        assert store.ids() == ["t1"]

    def test_main_ring_evicts_oldest(self):
        store = SpanStore(capacity=2, slow_capacity=2)
        for tid in ("t1", "t2", "t3"):
            store.put(_capture(tid))
        assert store.get("t1") is None
        assert store.ids() == ["t2", "t3"]
        assert store.stored == 3
        assert store.dropped == 1

    def test_slow_ring_survives_a_flood_of_fast_requests(self):
        store = SpanStore(capacity=2, slow_capacity=2)
        store.put(_capture("slow1", slow=True))
        for i in range(5):
            store.put(_capture(f"fast{i}"))
        # evicted from the main ring, still resident via the slow ring
        assert store.get("slow1") is not None
        assert "slow1" in store.ids()

    def test_rejects_nonpositive_capacities(self):
        with pytest.raises(ValueError):
            SpanStore(capacity=0)


class TestChromeExport:
    def test_export_passes_its_own_checker(self):
        recorder = SpanRecorder("deadbeef00000001")
        with recorder.span("prepare"):
            with recorder.span("parse"):
                pass
        parent = recorder.begin("dispatch")
        recorder.add_remote(
            [
                {
                    "name": "worker",
                    "start": recorder.wall0,
                    "end": recorder.wall0 + 0.001,
                }
            ],
            parent=parent,
            pid=99999,
            window=(recorder.start_of(parent), recorder.now()),
        )
        recorder.end(parent)
        payload = to_chrome_trace([recorder.finish()])
        assert check_chrome_trace(payload) == []

    def test_worker_spans_land_on_their_own_pid_track(self):
        recorder = SpanRecorder()
        parent = recorder.begin("dispatch")
        recorder.add_remote(
            [
                {
                    "name": "worker",
                    "start": recorder.wall0,
                    "end": recorder.wall0 + 0.001,
                }
            ],
            parent=parent,
            pid=54321,
        )
        recorder.end(parent)
        payload = to_chrome_trace([recorder.finish()])
        pids = {
            e["pid"] for e in payload["traceEvents"] if e["ph"] != "M"
        }
        assert 54321 in pids and len(pids) == 2
        # each pid track gets a process_name metadata event
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == pids

    def test_multiple_captures_are_offset_not_interleaved(self):
        captures = [_capture("t1"), _capture("t2")]
        payload = to_chrome_trace(captures)
        assert check_chrome_trace(payload) == []
        by_trace = {}
        for event in payload["traceEvents"]:
            if event["ph"] == "B":
                tid = event["args"]["trace_id"]
                by_trace.setdefault(tid, []).append(event["ts"])
        assert max(by_trace["t1"]) < min(by_trace["t2"])

    def test_checker_flags_unsorted_and_unmatched_events(self):
        broken = {
            "traceEvents": [
                {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 10.0},
                {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 5.0},
                {"name": "b", "ph": "B", "pid": 1, "tid": 0, "ts": 6.0},
            ]
        }
        problems = check_chrome_trace(broken)
        assert any("ts" in p for p in problems)
        assert any("unclosed" in p for p in problems)
