"""Regression tests for the CC1xx fixes in the telemetry layer.

Each test pins one write path that the concurrency lint flagged as
unguarded and that now runs under a lock: racing it must neither raise
nor corrupt state.  The final test locks the contract in place — the
lint itself must find ``repro.telemetry`` and ``repro.service`` clean.
"""

import io
import json
import threading
import urllib.request
from pathlib import Path

import repro
from repro.analysis.concurrency import lint_paths
from repro.telemetry.hooks import set_enabled, set_registry, use_registry
from repro.telemetry.http import TelemetryServer
from repro.telemetry.querylog import QueryLog, QueryLogEvent
from repro.telemetry.registry import MetricsRegistry


def event(index=0):
    return QueryLogEvent(
        trace_id=f"t{index}",
        query_hash="h",
        query="Q",
        engine="tlc",
        optimize=False,
        cache_hit=False,
        status="ok",
        seconds=0.0,
        result_trees=0,
    )


def hammer(workers):
    """Run the worker callables concurrently; re-raise any exception."""
    errors = []

    def wrap(fn):
        try:
            fn()
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=wrap, args=(fn,)) for fn in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


class TestQueryLogCloseRace:
    def test_emit_racing_close_never_hits_a_closed_sink(self):
        for _ in range(20):
            log = QueryLog(capacity=8, sink=io.StringIO())
            log._owns_sink = True  # close() should tear the sink down
            start = threading.Barrier(3)

            def emit():
                start.wait()
                for index in range(50):
                    log.emit(event(index))

            def close():
                start.wait()
                log.close()

            hammer([emit, emit, close])

    def test_double_close_is_idempotent(self):
        log = QueryLog(capacity=4, sink=io.StringIO())
        log._owns_sink = True
        hammer([log.close, log.close, log.close])


class TestTelemetryServerLifecycle:
    def test_double_start_is_rejected(self, tiny_engine):
        from repro.service import QueryService

        with QueryService(tiny_engine) as service:
            server = TelemetryServer(service, port=0)
            try:
                server.start()
                try:
                    server.start()
                    raise AssertionError("second start must fail")
                except RuntimeError:
                    pass
            finally:
                server.close()

    def test_racing_closers_shut_down_exactly_once(self, tiny_engine):
        from repro.service import QueryService

        with QueryService(tiny_engine) as service:
            server = TelemetryServer(service, port=0)
            host, port = server.start()
            body = urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=5
            ).read()
            assert json.loads(body)["status"] == "ok"
            hammer([server.close] * 4)
            assert server._httpd is None and server._thread is None


class TestHookSetterRaces:
    def test_racing_registry_swaps_settle_on_one_registry(self):
        original = set_registry(MetricsRegistry())
        try:
            registries = [MetricsRegistry() for _ in range(8)]
            hammer([lambda r=r: set_registry(r) for r in registries])
            from repro.telemetry import hooks

            assert hooks._registry in registries
        finally:
            set_registry(original)

    def test_racing_enable_toggles_leave_a_boolean(self):
        previous = set_enabled(True)
        try:
            hammer(
                [lambda f=f: set_enabled(f) for f in (True, False) * 8]
            )
            from repro.telemetry import hooks

            assert hooks._enabled in (True, False)
        finally:
            set_enabled(previous)

    def test_use_registry_restores_on_exit(self):
        fresh = MetricsRegistry()
        from repro.telemetry import hooks

        before = hooks._registry
        with use_registry(fresh) as active:
            assert active is fresh
        assert hooks._registry is before


class TestDescribeUnderLock:
    def test_help_text_registration_is_lock_guarded(self):
        registry = MetricsRegistry()

        def register(i):
            counter = registry.counter(f"c_{i % 4}", help="help text")
            counter.inc()

        hammer([lambda i=i: register(i) for i in range(16)])
        assert registry.help_for("c_0") == "help text"
        assert len(registry.counters()) == 4


def test_shared_scope_modules_lint_clean():
    """The satellite contract: the flagged writes stayed fixed."""
    root = Path(repro.__file__).resolve().parent
    findings = lint_paths(
        [root / "service", root / "telemetry"], package_root=root
    )
    assert findings == [], [f.render() for f in findings]
