"""Unit tests for the sharded metrics registry and its exposition."""

import sys
import threading
from pathlib import Path

import pytest

from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    render_prometheus,
    use_registry,
)
from repro.telemetry import hooks
from repro.telemetry.exposition import work_counter_families

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
from promformat import parse_exposition  # noqa: E402


class TestCounter:
    def test_increments_accumulate(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_concurrent_increments_are_exact(self):
        """Sharded locks lose nothing: N threads x M incs == N*M."""
        counter = MetricsRegistry().counter("c")
        threads_n, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == threads_n * per_thread

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("c", {"engine": "tlc"}).inc()
        registry.counter("c", {"engine": "tax"}).inc(2)
        series = {
            labels: value for _, labels, value in registry.counters()
        }
        assert series[(("engine", "tlc"),)] == 1
        assert series[(("engine", "tax"),)] == 2


class TestHistogram:
    def test_log2_bucket_bounds(self):
        hist = Histogram(base=1.0, buckets=4)
        assert hist.bounds == [1.0, 2.0, 4.0, 8.0]

    def test_boundary_value_lands_in_inclusive_bucket(self):
        """Bucket upper bounds are inclusive: observe(2.0) -> le=2."""
        hist = Histogram(base=1.0, buckets=4)
        hist.observe(2.0)
        snap = hist.snapshot()
        assert snap.counts[1] == 1  # the (1, 2] bucket
        assert sum(snap.counts) == 1

    def test_overflow_goes_to_inf_bucket(self):
        hist = Histogram(base=1.0, buckets=3)  # bounds 1, 2, 4
        hist.observe(100.0)
        snap = hist.snapshot()
        assert snap.counts[-1] == 1
        cumulative = list(snap.cumulative())
        assert cumulative[-1] == (float("inf"), 1)

    def test_exact_moments(self):
        hist = Histogram(base=1.0, buckets=8)
        for value in (1.0, 3.0, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.count == 3
        assert snap.sum == 9.0
        assert snap.min == 1.0
        assert snap.max == 5.0

    def test_single_value_percentiles_are_exact(self):
        """Clamping to [min, max] beats the bucket-bound estimate."""
        hist = Histogram(base=1.0, buckets=8)
        for _ in range(10):
            hist.observe(3.0)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.percentile(q) == 3.0

    def test_percentile_orders_sensibly(self):
        hist = Histogram(base=1e-4, buckets=28)
        for ms in range(1, 101):  # 1ms .. 100ms
            hist.observe(ms / 1000.0)
        p50 = hist.percentile(0.50)
        p95 = hist.percentile(0.95)
        p99 = hist.percentile(0.99)
        assert p50 <= p95 <= p99
        # log2 buckets are factor-2 accurate at worst
        assert 0.025 <= p50 <= 0.1
        assert p99 <= 0.1

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_quantile_domain_checked(self):
        with pytest.raises(ValueError):
            Histogram().snapshot().percentile(1.5)

    def test_concurrent_observations_are_exact(self):
        hist = Histogram(base=1.0, buckets=8)
        threads_n, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                hist.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = hist.snapshot()
        assert snap.count == threads_n * per_thread
        assert snap.sum == float(threads_n * per_thread)

    def test_percentiles_ms_keys(self):
        hist = Histogram()
        hist.observe(0.002)
        triple = hist.snapshot().percentiles_ms()
        assert set(triple) == {"p50_ms", "p95_ms", "p99_ms"}
        assert triple["p50_ms"] == pytest.approx(2.0, rel=0.5)


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_snapshot_flattens_labels(self):
        registry = MetricsRegistry()
        registry.counter("c", {"engine": "tlc"}).inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c{engine=tlc}": 1.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_help_text_registered_once(self):
        registry = MetricsRegistry()
        registry.counter("c", help="first wins")
        registry.counter("c", help="ignored")
        assert registry.help_for("c") == "first wins"


class TestHooks:
    def test_instrument_writes_catalog_metric(self):
        with use_registry(MetricsRegistry()) as registry:
            hooks.instrument("evaluator.run")
            hooks.instrument("evaluator.run")
            snap = registry.snapshot()
        assert snap["counters"]["repro_plan_executions_total"] == 2.0

    def test_unknown_site_raises(self):
        with use_registry(MetricsRegistry()):
            with pytest.raises(KeyError):
                hooks.instrument("no.such.site")

    def test_disabled_context_suppresses_this_thread(self):
        with use_registry(MetricsRegistry()) as registry:
            with hooks.disabled():
                hooks.instrument("evaluator.run")
            hooks.instrument("evaluator.run")
        snap = registry.snapshot()
        assert snap["counters"]["repro_plan_executions_total"] == 1.0

    def test_disabled_is_thread_local(self):
        recorded = []

        def other_thread():
            recorded.append(hooks.enabled())

        with use_registry(MetricsRegistry()):
            with hooks.disabled():
                thread = threading.Thread(target=other_thread)
                thread.start()
                thread.join()
                assert not hooks.enabled()
        assert recorded == [True]

    def test_set_enabled_global_switch(self):
        with use_registry(MetricsRegistry()) as registry:
            previous = hooks.set_enabled(False)
            try:
                hooks.instrument("evaluator.run")
            finally:
                hooks.set_enabled(previous)
        assert registry.snapshot()["counters"] == {}


class TestExposition:
    def test_render_validates_and_counts(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", help="x ops").inc(3)
        registry.counter(
            "repro_requests_total", {"engine": "tlc", "status": "ok"}
        ).inc()
        registry.gauge("repro_up", help="liveness").set(1)
        hist = registry.histogram("repro_seconds", help="latency")
        for value in (0.001, 0.004, 2.0):
            hist.observe(value)
        text = render_prometheus(registry)
        families = parse_exposition(text)
        assert families["repro_x_total"].kind == "counter"
        assert families["repro_x_total"].samples[0][2] == 3.0
        assert families["repro_seconds"].kind == "histogram"
        name, labels, value = families["repro_requests_total"].samples[0]
        assert labels == {"engine": "tlc", "status": "ok"}

    def test_histogram_bucket_lines_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", base=1.0, buckets=3)
        for value in (0.5, 1.5, 100.0):
            hist.observe(value)
        text = render_prometheus(registry)
        bucket_lines = [
            line for line in text.splitlines() if "h_bucket" in line
        ]
        assert bucket_lines[-1].startswith('h_bucket{le="+Inf"} 3')
        assert "h_sum" in text and "h_count" in text
        parse_exposition(text)  # cumulative + count invariants

    def test_work_counter_families_rendered(self):
        registry = MetricsRegistry()
        extras = work_counter_families({"pages_read": 7, "nest_joins": 0})
        text = render_prometheus(registry, extras)
        families = parse_exposition(text)
        assert families["repro_work_pages_read_total"].samples[0][2] == 7.0
        assert families["repro_work_nest_joins_total"].samples[0][2] == 0.0
