"""Query-log ring semantics: eviction, sinks, slow-capture dedup."""

import json

import pytest

from repro.telemetry.querylog import (
    QueryLog,
    QueryLogEvent,
    SlowQueryLog,
    excerpt,
    new_trace_id,
    query_hash,
)


def _event(number: int, slow: bool = False, qhash: str = None):
    return QueryLogEvent(
        trace_id=new_trace_id(),
        query_hash=qhash if qhash is not None else f"hash{number:04d}",
        query=f"query {number}",
        engine="tlc",
        optimize=False,
        cache_hit=False,
        status="ok",
        seconds=number / 1000.0,
        result_trees=number,
        slow=slow,
    )


class TestQueryLogRing:
    def test_ring_keeps_newest_capacity_events(self):
        log = QueryLog(capacity=4)
        for number in range(10):
            log.emit(_event(number))
        assert len(log) == 4
        assert log.emitted == 10, "evicted events still count as emitted"
        assert [e.result_trees for e in log.tail(100)] == [6, 7, 8, 9]

    def test_tail_returns_newest_oldest_first(self):
        log = QueryLog(capacity=8)
        for number in range(5):
            log.emit(_event(number))
        assert [e.result_trees for e in log.tail(2)] == [3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryLog(capacity=0)

    def test_sink_receives_every_event_as_jsonl(self, tmp_path):
        path = tmp_path / "qlog.jsonl"
        log = QueryLog(capacity=2, sink_path=str(path))
        for number in range(5):
            log.emit(_event(number))
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 5, "the sink outlives the ring"
        parsed = [json.loads(line) for line in lines]
        assert [p["result_trees"] for p in parsed] == [0, 1, 2, 3, 4]
        assert all("trace_id" in p and "ms" in p for p in parsed)

    def test_sink_and_sink_path_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            QueryLog(sink=object(), sink_path=str(tmp_path / "x"))


class TestSlowQueryLog:
    def test_ring_eviction_bounds_captures(self):
        slow = SlowQueryLog(capacity=2)
        for number in range(3):
            slow.record(_event(number, slow=True))
        assert len(slow) == 2
        assert slow.captured == 3
        assert [e.result_trees for e in slow.tail(10)] == [1, 2]

    def test_seen_tracks_only_resident_hashes(self):
        """An evicted capture's hash is forgotten -> re-capture allowed."""
        slow = SlowQueryLog(capacity=2)
        slow.record(_event(0, slow=True, qhash="aaa"))
        slow.record(_event(1, slow=True, qhash="bbb"))
        assert slow.seen("aaa") and slow.seen("bbb")
        slow.record(_event(2, slow=True, qhash="ccc"))  # evicts aaa
        assert not slow.seen("aaa")
        assert slow.seen("bbb") and slow.seen("ccc")

    def test_should_capture_claims_exactly_once(self):
        """Concurrent slow twins must not both pay the traced re-run."""
        slow = SlowQueryLog(capacity=2)
        assert slow.should_capture("aaa")
        assert not slow.should_capture("aaa")  # claimed, not yet recorded
        slow.record(_event(0, slow=True, qhash="aaa"))
        assert not slow.should_capture("aaa")  # now resident
        slow.record(_event(1, slow=True, qhash="bbb"))
        slow.record(_event(2, slow=True, qhash="ccc"))  # evicts aaa
        assert slow.should_capture("aaa")  # evicted -> claimable again

    def test_should_capture_claims_race_free(self):
        import threading

        slow = SlowQueryLog(capacity=4)
        claims = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(100):
                if slow.should_capture("hot"):
                    claims.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(claims) == 1


class TestEventHelpers:
    def test_query_hash_is_stable_and_short(self):
        assert query_hash("FOR $x ...") == query_hash("FOR $x ...")
        assert len(query_hash("FOR $x ...")) == 12
        assert query_hash("a") != query_hash("b")

    def test_excerpt_flattens_and_bounds(self):
        assert excerpt("FOR  $x\n  IN y") == "FOR $x IN y"
        long = "x" * 500
        assert len(excerpt(long)) <= 120

    def test_to_dict_omits_absent_error_and_trace(self):
        payload = _event(1).to_dict()
        assert "error" not in payload and "trace" not in payload
        event = _event(2)
        event.error = "boom"
        event.trace = {"records": []}
        payload = event.to_dict()
        assert payload["error"] == "boom"
        assert payload["trace"] == {"records": []}
