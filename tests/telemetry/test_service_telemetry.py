"""Service-level telemetry: slow capture, query log, exact sweep totals."""

import pytest

from repro import Engine
from repro.service import QueryService
from repro.telemetry import MetricsRegistry, use_registry
from repro.xmark import FIGURE15_ORDER, QUERIES
from tests.conftest import TINY_AUCTION

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)


@pytest.fixture
def engine():
    e = Engine()
    e.load_xml("auction.xml", TINY_AUCTION)
    return e


class TestSlowQueryCapture:
    def test_threshold_zero_marks_everything_slow(self, engine):
        with use_registry(MetricsRegistry()):
            with QueryService(engine, threads=2, slow_threshold=0.0) as svc:
                svc.execute(QUERY)
                stats = svc.stats()
        assert stats.slow_queries == 1
        assert svc.slow_log.captured == 1

    def test_high_threshold_marks_nothing_slow(self, engine):
        with use_registry(MetricsRegistry()):
            with QueryService(
                engine, threads=2, slow_threshold=3600.0
            ) as svc:
                svc.execute(QUERY)
                stats = svc.stats()
        assert stats.slow_queries == 0
        assert len(svc.slow_log) == 0
        assert len(svc.query_log) == 1, "fast requests are still logged"

    def test_boundary_is_inclusive(self, engine):
        """elapsed == threshold counts as slow (>=, not >)."""
        with use_registry(MetricsRegistry()):
            svc = QueryService(engine, threads=1, slow_threshold=0.5)
            prepared = svc.prepare(QUERY)
            svc._observe(prepared, "ok", None, 0.5, 3, {})
            svc._observe(prepared, "ok", None, 0.4999, 3, {})
            assert svc.stats().slow_queries == 1
            events = svc.query_log.tail(2)
            assert [event.slow for event in events] == [True, False]
            svc.close()

    def test_first_slow_request_captures_trace(self, engine):
        with use_registry(MetricsRegistry()):
            with QueryService(engine, threads=2, slow_threshold=0.0) as svc:
                svc.execute(QUERY)
                svc.execute(QUERY)
        first, second = svc.slow_log.tail(2)
        assert first.trace is not None, "first slow execution is traced"
        assert second.trace is None, "resident hash suppresses re-capture"
        records = first.trace["records"]
        assert records, "capture carries per-operator records"
        assert all("self_seconds" in record for record in records)
        assert first.trace["total_seconds"] >= 0

    def test_capture_rerun_does_not_inflate_registry(self, engine):
        """The traced re-run is suppressed: one visible execution each."""
        with use_registry(MetricsRegistry()) as registry:
            with QueryService(engine, threads=1, slow_threshold=0.0) as svc:
                svc.execute(QUERY)
                svc.execute(QUERY)
            counters = registry.snapshot()["counters"]
        assert counters["repro_plan_executions_total"] == 2.0

    def test_failed_query_is_logged_with_status(self, engine):
        from repro.errors import QueryTimeoutError

        with use_registry(MetricsRegistry()):
            with QueryService(engine, threads=1) as svc:
                with pytest.raises(QueryTimeoutError):
                    svc.execute(QUERY, deadline=1e-9)
        event = svc.query_log.tail(1)[0]
        assert event.status == "timeout"
        assert event.error is not None

    def test_negative_threshold_rejected(self, engine):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            QueryService(engine, slow_threshold=-1.0)


class TestServiceStats:
    def test_latency_percentiles_per_query_class(self, engine):
        with use_registry(MetricsRegistry()):
            with QueryService(engine, threads=2) as svc:
                for _ in range(3):
                    svc.execute(QUERY)
                stats = svc.stats()
        assert stats.latency["all"]["count"] == 3
        class_keys = [k for k in stats.latency if k != "all"]
        assert len(class_keys) == 1 and class_keys[0].startswith("tlc:")
        entry = stats.latency[class_keys[0]]
        assert entry["count"] == 3
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert entry[key] >= 0
        assert "FOR $p IN" in entry["query"]

    def test_counters_snapshot_exposes_work_metrics(self, engine):
        with use_registry(MetricsRegistry()):
            with QueryService(engine, threads=2) as svc:
                svc.execute(QUERY)
                svc.execute(QUERY)
                stats = svc.stats()
        assert stats.counters["plan_cache_hits"] == 1
        assert stats.counters["plan_cache_misses"] == 1
        assert stats.counters["pages_read"] > 0

    def test_to_dict_is_json_ready(self, engine):
        import json

        with use_registry(MetricsRegistry()):
            with QueryService(engine, threads=2) as svc:
                svc.execute(QUERY)
                payload = svc.stats().to_dict()
        json.dumps(payload)
        assert payload["cache"]["hit_rate"] == 0.0
        assert payload["latency"]["all"]["count"] == 1

    def test_query_log_event_fields(self, engine):
        with use_registry(MetricsRegistry()):
            with QueryService(engine, threads=1) as svc:
                svc.execute(QUERY)
                svc.execute(QUERY)
        first, second = svc.query_log.tail(2)
        assert first.cache_hit is False and second.cache_hit is True
        assert first.status == "ok" and first.result_trees > 0
        assert first.query_hash == second.query_hash
        assert first.trace_id != second.trace_id
        assert first.counters.get("pages_read", 0) > 0


class TestConcurrencyEquivalence:
    """Registry totals are exact: 8-thread sweep == serial sweep."""

    @staticmethod
    def _sweep(engine, threads):
        registry = MetricsRegistry()
        with use_registry(registry):
            with QueryService(engine, threads=threads) as svc:
                svc.execute_many(
                    QUERIES[name].text for name in FIGURE15_ORDER
                )
        return registry.snapshot()

    def test_sweep_totals_match_serial(self, xmark_engine):
        serial = self._sweep(xmark_engine, threads=1)
        pooled = self._sweep(xmark_engine, threads=8)
        assert pooled["counters"] == serial["counters"], (
            "sharded counters must not drop under 8-thread contention"
        )
        for name in ("repro_result_trees", "repro_pattern_match_trees"):
            assert (
                pooled["histograms"][name]["count"]
                == serial["histograms"][name]["count"]
            )
            # cardinality sums are deterministic (counts of trees),
            # unlike latency sums which measure wall time
            assert (
                pooled["histograms"][name]["sum"]
                == serial["histograms"][name]["sum"]
            )
        assert (
            pooled["histograms"]["repro_eval_seconds"]["count"]
            == serial["histograms"]["repro_eval_seconds"]["count"]
        )
