"""Unit tests for the LRU buffer pool and I/O accounting."""

import pytest

from repro.storage import Database
from repro.storage.page import NODES_PER_PAGE, BufferPool
from repro.storage.stats import Metrics


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(4, Metrics())
        assert pool.access("p1") is False  # miss
        assert pool.access("p1") is True  # hit
        assert pool.metrics.pages_read == 1
        assert pool.metrics.buffer_hits == 1

    def test_lru_eviction(self):
        pool = BufferPool(2, Metrics())
        pool.access("a")
        pool.access("b")
        pool.access("a")  # a is now most recent
        pool.access("c")  # evicts b
        assert pool.access("a") is True
        assert pool.access("b") is False  # was evicted

    def test_capacity_respected(self):
        pool = BufferPool(3, Metrics())
        for key in range(10):
            pool.access(key)
        assert pool.resident_pages == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0, Metrics())

    def test_write_accounting(self):
        pool = BufferPool(2, Metrics())
        pool.write("a")
        assert pool.metrics.pages_written == 1
        assert pool.access("a") is True

    def test_clear(self):
        pool = BufferPool(2, Metrics())
        pool.access("a")
        pool.clear()
        assert pool.resident_pages == 0
        assert pool.access("a") is False


class TestIntegrationWithDocuments:
    def test_sequential_scan_reads_few_pages(self):
        """Clustering: a document-order scan touches each page once."""
        db = Database()
        items = "".join(f"<i>{n}</i>" for n in range(NODES_PER_PAGE * 3))
        doc = db.load_xml("t.xml", f"<r>{items}</r>")
        db.reset_metrics(cold_cache=True)
        for idx in range(len(doc)):
            doc.fetch(idx)
        expected_pages = -(-len(doc) // NODES_PER_PAGE)
        assert db.metrics.pages_read == expected_pages
        assert db.metrics.buffer_hits == len(doc) - expected_pages

    def test_metrics_reset(self):
        db = Database()
        db.load_xml("t.xml", "<r><a/></r>")
        db.tag_lookup("t.xml", "a")
        assert db.metrics.index_lookups == 1
        db.reset_metrics()
        assert db.metrics.index_lookups == 0

    def test_metrics_snapshot_diff(self):
        metrics = Metrics()
        metrics.pages_read = 5
        snap = metrics.snapshot()
        metrics.pages_read = 9
        assert metrics.diff(snap)["pages_read"] == 4

    def test_metrics_addition(self):
        a, b = Metrics(), Metrics()
        a.pages_read, b.pages_read = 2, 3
        assert (a + b).pages_read == 5
