"""Unit tests for XML serialisation."""

from repro.storage import Database, parse_xml
from repro.storage.xml_serializer import (
    escape_attr,
    escape_text,
    serialize_parsed,
    serialize_stored,
)


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attr_escapes_quotes(self):
        assert escape_attr('say "hi" & more') == "say &quot;hi&quot; &amp; more"


class TestSerializeParsed:
    def test_pretty_printing(self):
        root = parse_xml("<a><b>x</b><c/></a>")
        text = serialize_parsed(root)
        assert text == "<a>\n  <b>x</b>\n  <c/>\n</a>"

    def test_attributes_rendered(self):
        root = parse_xml('<a k="v&amp;w"/>')
        assert serialize_parsed(root) == '<a k="v&amp;w"/>'

    def test_roundtrip_with_special_chars(self):
        original = '<a note="5 &lt; 6">x &amp; y</a>'
        root = parse_xml(original)
        again = parse_xml(serialize_parsed(root))
        assert again.text == "x & y"
        assert again.attrs["note"] == "5 < 6"


class TestSerializeStored:
    def test_skips_doc_root_wrapper(self):
        db = Database()
        doc = db.load_xml("t.xml", "<a><b/></a>")
        assert serialize_stored(doc) == "<a><b/></a>"

    def test_attributes_from_at_children(self):
        db = Database()
        doc = db.load_xml("t.xml", '<a x="1"><b y="2">t</b></a>')
        assert serialize_stored(doc) == '<a x="1"><b y="2">t</b></a>'

    def test_subtree_serialization(self):
        db = Database()
        doc = db.load_xml("t.xml", "<a><b>x</b></a>")
        b_index = next(
            i for i, r in enumerate(doc.records) if r.tag == "b"
        )
        assert serialize_stored(doc, b_index) == "<b>x</b>"
