"""Snapshot fidelity: the spawn-mode handshake changes nothing.

Process-pool workers started under ``spawn`` materialize their database
from a :func:`~repro.storage.persist.write_snapshot` file, so the
snapshot round trip is part of the execution substrate.  These tests
pin it down: the handle's digest guards the file, and a database loaded
from a snapshot answers every XMark benchmark query byte-identically
to the database it was written from.
"""

import pytest

from repro import Engine
from repro.errors import StorageError
from repro.storage import Database
from repro.storage.persist import (
    SnapshotHandle,
    open_snapshot,
    write_snapshot,
)
from repro.storage.xml_serializer import serialize_stored
from repro.xmark import FIGURE15_ORDER, QUERIES
from tests.conftest import TINY_AUCTION


class TestSnapshotHandle:
    def test_round_trip_preserves_documents(self, tmp_path, tiny_db):
        handle = write_snapshot(tiny_db, str(tmp_path / "db.tlcdb"))
        assert handle.pool_pages == tiny_db.pool.capacity
        loaded = open_snapshot(handle)
        assert loaded.document_names() == tiny_db.document_names()
        assert serialize_stored(
            loaded.document("auction.xml")
        ) == serialize_stored(tiny_db.document("auction.xml"))

    def test_digest_is_stable(self, tmp_path, tiny_db):
        first = write_snapshot(tiny_db, str(tmp_path / "a.tlcdb"))
        second = write_snapshot(tiny_db, str(tmp_path / "b.tlcdb"))
        assert first.digest == second.digest

    def test_corrupted_snapshot_is_refused(self, tmp_path, tiny_db):
        path = tmp_path / "db.tlcdb"
        handle = write_snapshot(tiny_db, str(path))
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="unverified"):
            open_snapshot(handle)

    def test_stale_handle_is_refused(self, tmp_path, tiny_db):
        path = tmp_path / "db.tlcdb"
        handle = write_snapshot(tiny_db, str(path))
        # the file was replaced after the handle was issued
        tiny_db.load_xml("extra.xml", "<r><x>1</x></r>")
        write_snapshot(tiny_db, str(path))
        with pytest.raises(StorageError, match="unverified"):
            open_snapshot(handle)

    def test_handle_is_picklable(self, tmp_path, tiny_db):
        import pickle

        handle = write_snapshot(tiny_db, str(tmp_path / "db.tlcdb"))
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle
        assert isinstance(clone, SnapshotHandle)

    def test_pool_capacity_survives(self, tmp_path):
        db = Database(pool_pages=17)
        db.load_xml("a.xml", "<a><b>1</b></a>")
        handle = write_snapshot(db, str(tmp_path / "db.tlcdb"))
        assert open_snapshot(handle).pool.capacity == 17


class TestSnapshotSweep:
    def test_all_benchmark_queries_byte_identical(
        self, tmp_path, xmark_engine
    ):
        handle = write_snapshot(
            xmark_engine.db, str(tmp_path / "xmark.tlcdb")
        )
        loaded = Engine(open_snapshot(handle))
        for name in FIGURE15_ORDER:
            text = QUERIES[name].text
            expected = [t.to_xml() for t in xmark_engine.run(text)]
            actual = [t.to_xml() for t in loaded.run(text)]
            assert actual == expected, (
                f"{name}: snapshot-loaded database diverged from source"
            )
