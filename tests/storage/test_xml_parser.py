"""Unit and property tests for the hand-rolled XML parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import XMLParseError
from repro.storage.xml_parser import ParsedElement, decode_entities, parse_xml
from repro.storage.xml_serializer import serialize_parsed


class TestBasicParsing:
    def test_single_element(self):
        root = parse_xml("<a/>")
        assert root.tag == "a"
        assert root.children == []
        assert root.text is None

    def test_text_content(self):
        root = parse_xml("<a>hello</a>")
        assert root.text == "hello"

    def test_nested_elements(self):
        root = parse_xml("<a><b/><c><d/></c></a>")
        assert [c.tag for c in root.children] == ["b", "c"]
        assert root.children[1].children[0].tag == "d"

    def test_attributes(self):
        root = parse_xml('<a x="1" y=\'two\'/>')
        assert root.attrs == {"x": "1", "y": "two"}

    def test_whitespace_between_elements_dropped(self):
        root = parse_xml("<a>\n  <b/>\n  <c/>\n</a>")
        assert root.text is None
        assert len(root.children) == 2

    def test_mixed_content_concatenated(self):
        root = parse_xml("<a>one<b/>two</a>")
        assert root.text == "one two"

    def test_xml_declaration_and_doctype(self):
        root = parse_xml('<?xml version="1.0"?><!DOCTYPE a><a/>')
        assert root.tag == "a"

    def test_comments_ignored(self):
        root = parse_xml("<a><!-- hi --><b/><!-- bye --></a>")
        assert [c.tag for c in root.children] == ["b"]

    def test_cdata(self):
        root = parse_xml("<a><![CDATA[x < y & z]]></a>")
        assert root.text == "x < y & z"

    def test_processing_instruction_ignored(self):
        root = parse_xml("<a><?php echo ?><b/></a>")
        assert [c.tag for c in root.children] == ["b"]


class TestEntities:
    def test_named_entities(self):
        root = parse_xml("<a>&lt;&gt;&amp;&quot;&apos;</a>")
        assert root.text == "<>&\"'"

    def test_numeric_entities(self):
        assert decode_entities("&#65;&#x42;") == "AB"

    def test_entities_in_attributes(self):
        root = parse_xml('<a x="&amp;b"/>')
        assert root.attrs["x"] == "&b"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a>&nosuch;</a>")


class TestErrors:
    def test_mismatched_close_tag(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse_xml("<a><b></a></b>")
        assert "mismatched" in str(excinfo.value)

    def test_unclosed_element(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a><b>")

    def test_trailing_content(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a/><b/>")

    def test_unquoted_attribute(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a x=1/>")

    def test_error_carries_location(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse_xml("<a>\n<b x=1/></a>")
        assert excinfo.value.line == 2


class TestParsedElement:
    def test_find_all(self):
        root = parse_xml("<a><b/><c><b/></c></a>")
        assert len(root.find_all("b")) == 2

    def test_size(self):
        root = parse_xml("<a><b/><c><b/></c></a>")
        assert root.size() == 4


# ----------------------------------------------------------------------
# property: serialize → parse is the identity on parse trees
# ----------------------------------------------------------------------
_tags = st.sampled_from(["a", "b", "item", "person_x", "x-1"])
_texts = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"), blacklist_characters="<>&\"'"
    ),
    min_size=1,
    max_size=12,
).map(str.strip).filter(bool)


@st.composite
def parsed_elements(draw, depth=0):
    tag = draw(_tags)
    attrs = draw(
        st.dictionaries(_tags, _texts, max_size=2)
    )
    element = ParsedElement(tag, attrs)
    if draw(st.booleans()):
        element.text = draw(_texts)
    if depth < 2:
        for _ in range(draw(st.integers(0, 2))):
            element.children.append(draw(parsed_elements(depth=depth + 1)))
    return element


def _normalized(element: ParsedElement):
    return (
        element.tag,
        tuple(sorted(element.attrs.items())),
        element.text,
        tuple(_normalized(c) for c in element.children),
    )


@given(parsed_elements())
def test_roundtrip(element):
    """Property: parse(serialize(t)) == t."""
    text = serialize_parsed(element)
    again = parse_xml(text)
    assert _normalized(again) == _normalized(element)
