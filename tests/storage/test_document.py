"""Unit tests for the stored document layer."""

import pytest

from repro.errors import StorageError
from repro.model.node_id import NodeId
from repro.storage import Database
from repro.storage.xml_serializer import serialize_stored

XML = """
<site>
 <people>
  <person id="p1"><name>Alice</name></person>
  <person id="p2"><name>Bob</name></person>
 </people>
</site>
"""


@pytest.fixture
def doc():
    db = Database()
    return db.load_xml("t.xml", XML), db


class TestStructure:
    def test_doc_root_wrapper(self, doc):
        document, _ = doc
        assert document.records[0].tag == "doc_root"
        assert document.records[0].level == 0
        root_children = document.records[0].children
        assert [document.records[i].tag for i in root_children] == ["site"]

    def test_attributes_become_at_children(self, doc):
        document, db = doc
        persons = db.tag_lookup("t.xml", "person")
        child_tags = [db.tag_of(c) for c in db.children(persons[0])]
        assert child_tags == ["@id", "name"]
        id_node = db.children(persons[0])[0]
        assert db.value_of(id_node) == "p1"

    def test_levels(self, doc):
        document, db = doc
        person = db.tag_lookup("t.xml", "person")[0]
        assert person.level == 3  # doc_root/site/people/person

    def test_record_count(self, doc):
        document, _ = doc
        # doc_root, site, people, 2×(person, @id, name)
        assert len(document) == 9

    def test_parent_pointers(self, doc):
        document, db = doc
        person = db.tag_lookup("t.xml", "person")[0]
        parent = db.parent(person)
        assert db.tag_of(parent) == "people"
        assert db.parent(document.root_id) is None

    def test_index_of_unknown_id_raises(self, doc):
        document, _ = doc
        with pytest.raises(StorageError):
            document.index_of(NodeId(document.doc_id, 9999, 10000, 1))

    def test_index_of_wrong_document_raises(self, doc):
        document, _ = doc
        with pytest.raises(StorageError):
            document.index_of(NodeId(document.doc_id + 7, 1, 2, 0))


class TestAccess:
    def test_subtree_materialization(self, doc):
        document, db = doc
        person = db.tag_lookup("t.xml", "person")[0]
        tree = db.subtree(person, lcls={3})
        assert tree.tag == "person"
        assert tree.lcls == {3}
        assert tree.to_xml() == '<person id="p1"><name>Alice</name></person>'

    def test_subtree_meters_every_node(self, doc):
        document, db = doc
        db.reset_metrics()
        person = db.tag_lookup("t.xml", "person")[0]
        before = db.metrics.nodes_touched
        db.subtree(person)
        # person + @id + name
        assert db.metrics.nodes_touched - before == 3

    def test_serialize_roundtrip(self, doc):
        document, _ = doc
        xml = serialize_stored(document)
        assert xml.startswith("<site>")
        assert '<person id="p2"><name>Bob</name></person>' in xml

    def test_children_in_document_order(self, doc):
        document, db = doc
        people = db.tag_lookup("t.xml", "people")[0]
        kids = db.children(people)
        starts = [k.start for k in kids]
        assert starts == sorted(starts)

    def test_reload_replaces_document(self, doc):
        document, db = doc
        db.load_xml("t.xml", "<site><x/></site>")
        assert db.tag_lookup("t.xml", "person") == []
        assert len(db.tag_lookup("t.xml", "x")) == 1

    def test_unknown_document_raises(self, doc):
        _, db = doc
        with pytest.raises(StorageError):
            db.document("missing.xml")
