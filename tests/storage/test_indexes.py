"""Unit tests for tag and value indexes."""

import pytest

from repro.columns.arrays import tolist
from repro.storage import Database

XML = """
<inventory>
  <item><price>10</price><name>rope</name></item>
  <item><price>25</price><name>lamp</name></item>
  <item><price>25</price><name>oil</name></item>
  <item><price>99.5</price><name>map</name></item>
  <item><name>gift</name></item>
</inventory>
"""


@pytest.fixture
def db():
    database = Database()
    database.load_xml("inv.xml", XML)
    return database


class TestTagIndex:
    def test_lookup_counts(self, db):
        assert len(db.tag_lookup("inv.xml", "item")) == 5
        assert len(db.tag_lookup("inv.xml", "price")) == 4

    def test_lookup_in_document_order(self, db):
        ids = db.tag_lookup("inv.xml", "item")
        assert [n.start for n in ids] == sorted(n.start for n in ids)

    def test_missing_tag_is_empty(self, db):
        assert db.tag_lookup("inv.xml", "widget") == []

    def test_lookup_meters(self, db):
        db.reset_metrics()
        db.tag_lookup("inv.xml", "item")
        assert db.metrics.index_lookups == 1
        assert db.metrics.index_entries_scanned == 5

    def test_raw_index_tags(self, db):
        index = db.tag_index("inv.xml")
        assert "price" in index.tags()
        assert index.count("item") == 5


class TestValueIndex:
    def test_equality(self, db):
        assert len(db.value_lookup("inv.xml", "price", "=", 25)) == 2
        assert len(db.value_lookup("inv.xml", "price", "=", "25")) == 2

    def test_range_queries(self, db):
        assert len(db.value_lookup("inv.xml", "price", ">", 10)) == 3
        assert len(db.value_lookup("inv.xml", "price", ">=", 25)) == 3
        assert len(db.value_lookup("inv.xml", "price", "<", 25)) == 1
        assert len(db.value_lookup("inv.xml", "price", "<=", 99.5)) == 4

    def test_not_equal(self, db):
        assert len(db.value_lookup("inv.xml", "price", "!=", 25)) == 2

    def test_string_equality(self, db):
        hits = db.value_lookup("inv.xml", "name", "=", "lamp")
        assert len(hits) == 1

    def test_range_does_not_cross_kinds(self, db):
        # a numeric range must not match non-numeric strings
        assert db.value_lookup("inv.xml", "name", ">", 0) == []

    def test_missing_tag_is_empty(self, db):
        assert db.value_lookup("inv.xml", "widget", "=", 1) == []

    def test_results_in_document_order(self, db):
        hits = db.value_lookup("inv.xml", "price", ">=", 0)
        starts = [n.start for n in hits]
        assert starts == sorted(starts)

    def test_unsupported_operator_raises(self, db):
        with pytest.raises(ValueError):
            db.value_lookup("inv.xml", "price", "~", 1)


class TestScanMetering:
    """Pin the ``index_entries_scanned`` accounting per operator.

    Equality and the range operators must charge only the binary-search
    slice they touch; ``!=`` degrades to a full scan of the tag's
    postings.  These are the exact costs the fast-path benchmark
    normalises by, so the numbers are pinned, not just bounded.
    """

    def _scanned(self, db, op, value):
        db.reset_metrics()
        db.value_lookup("inv.xml", "price", op, value)
        assert db.metrics.index_lookups == 1
        return db.metrics.index_entries_scanned

    def test_equality_scans_only_the_slice(self, db):
        # prices: 10, 25, 25, 99.5 -> the "= 25" run is two entries
        assert self._scanned(db, "=", 25) == 2
        assert self._scanned(db, "=", 10) == 1

    def test_equality_miss_charges_minimum(self, db):
        # an empty slice still accounts one probe entry
        assert self._scanned(db, "=", 11) == 1

    def test_range_scans_prefix(self, db):
        assert self._scanned(db, "<", 25) == 1
        assert self._scanned(db, "<=", 25) == 3

    def test_not_equal_scans_everything(self, db):
        assert self._scanned(db, "!=", 25) == 4
        assert self._scanned(db, "!=", -1) == 4


class TestImmutableViews:
    def test_tag_lookup_returns_shared_view(self, db):
        first = db.tag_lookup("inv.xml", "item")
        second = db.tag_lookup("inv.xml", "item")
        assert first is second

    def test_tag_lookup_view_rejects_mutation(self, db):
        postings = db.tag_lookup("inv.xml", "item")
        with pytest.raises(AttributeError):
            postings.append(postings[0])
        with pytest.raises(TypeError):
            postings.ids[0] = postings.ids[1]

    def test_columns_available_without_rebuild(self, db):
        postings = db.tag_lookup("inv.xml", "price")
        assert postings.starts == [(n.doc, n.start) for n in postings]
        assert tolist(postings.levels) == [n.level for n in postings]
