"""Unit tests for the thread-striped Metrics counter bundle."""

import pickle
import threading

from repro.storage.stats import COUNTER_FIELDS, Metrics


def run_threads(count, body):
    """Run ``body(index)`` on ``count`` threads; join them all."""
    threads = [
        threading.Thread(target=body, args=(i,)) for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestStriping:
    def test_fresh_bundle_is_all_zero(self):
        metrics = Metrics()
        assert metrics.snapshot() == dict.fromkeys(COUNTER_FIELDS, 0)

    def test_snapshot_totals_are_exact_across_threads(self):
        metrics = Metrics()
        per_thread = 500

        def body(_index):
            for _ in range(per_thread):
                metrics.pages_read += 1
                metrics.structural_joins += 1

        run_threads(8, body)
        snap = metrics.snapshot()
        assert snap["pages_read"] == 8 * per_thread
        assert snap["structural_joins"] == 8 * per_thread

    def test_dead_thread_counts_survive(self):
        metrics = Metrics()

        def body(_index):
            metrics.nodes_touched += 7

        run_threads(3, body)
        # every worker has exited; its cell must still be in the totals
        assert metrics.snapshot()["nodes_touched"] == 21

    def test_local_window_sees_only_the_calling_thread(self):
        metrics = Metrics()
        metrics.pages_read += 2
        before = metrics.local_snapshot()
        done = threading.Event()

        def other(_index):
            metrics.pages_read += 100
            done.set()

        run_threads(1, other)
        assert done.is_set()
        metrics.pages_read += 3
        delta = metrics.local_diff(before)
        assert delta["pages_read"] == 3, "other thread bled into the window"
        assert metrics.snapshot()["pages_read"] == 105

    def test_diff_against_global_snapshot(self):
        metrics = Metrics()
        metrics.index_lookups += 1
        before = metrics.snapshot()
        run_threads(2, lambda _i: setattr(
            metrics, "index_lookups", metrics.index_lookups + 5
        ))
        assert metrics.diff(before)["index_lookups"] == 10


class TestAggregation:
    def test_merge_lands_in_the_calling_threads_cell(self):
        metrics = Metrics()
        before = metrics.local_snapshot()
        metrics.merge({"pattern_matches": 4, "trees_built": 2})
        delta = metrics.local_diff(before)
        assert delta["pattern_matches"] == 4
        assert delta["trees_built"] == 2
        assert metrics.snapshot()["pattern_matches"] == 4

    def test_merge_ignores_unknown_keys(self):
        metrics = Metrics()
        metrics.merge({"from_a_newer_worker": 9, "pages_read": 1})
        snap = metrics.snapshot()
        assert snap["pages_read"] == 1
        assert "from_a_newer_worker" not in snap

    def test_reset_zeroes_every_threads_cell(self):
        metrics = Metrics()
        metrics.pages_read += 5
        run_threads(2, lambda _i: setattr(
            metrics, "pages_read", metrics.pages_read + 5
        ))
        assert metrics.snapshot()["pages_read"] == 15
        metrics.reset()
        assert metrics.snapshot() == dict.fromkeys(COUNTER_FIELDS, 0)

    def test_add_sums_two_bundles(self):
        a, b = Metrics(), Metrics()
        a.pages_read += 1
        b.pages_read += 2
        b.sort_ops += 3
        merged = a + b
        snap = merged.snapshot()
        assert snap["pages_read"] == 3
        assert snap["sort_ops"] == 3


class TestPickling:
    def test_round_trip_collapses_to_merged_totals(self):
        metrics = Metrics()
        metrics.pages_read += 2
        run_threads(2, lambda _i: setattr(
            metrics, "pages_read", metrics.pages_read + 3
        ))
        clone = pickle.loads(pickle.dumps(metrics))
        assert isinstance(clone, Metrics)
        assert clone.snapshot()["pages_read"] == 8
        # the clone is an independent bundle
        clone.pages_read += 1
        assert metrics.snapshot()["pages_read"] == 8
        assert clone.snapshot()["pages_read"] == 9
