"""Unit tests for the columnar Postings view."""

import pytest

from repro.columns.arrays import tolist
from repro.storage import Database
from repro.storage.postings import EMPTY_POSTINGS, Postings

XML = """
<r>
  <a><b/><b/><c><b/></c></a>
  <a><c/></a>
</r>
"""


@pytest.fixture
def db():
    database = Database()
    database.load_xml("t.xml", XML)
    return database


class TestColumns:
    def test_columns_parallel_to_ids(self, db):
        postings = db.tag_index("t.xml").postings("b")
        assert len(postings) == 3
        assert postings.starts == [(n.doc, n.start) for n in postings.ids]
        assert tolist(postings.ends) == [n.end for n in postings.ids]
        assert tolist(postings.levels) == [n.level for n in postings.ids]

    def test_starts_sorted_ascending(self, db):
        postings = db.tag_index("t.xml").postings("a")
        assert postings.starts == sorted(postings.starts)

    def test_record_indexes_resolve_tag(self, db):
        doc = db.document("t.xml")
        postings = db.tag_index("t.xml").postings("c")
        assert postings.record_indexes is not None
        assert all(
            doc.records[idx].tag == "c" for idx in postings.record_indexes
        )


class TestLevelPartitions:
    def test_at_level_filters_exactly(self, db):
        postings = db.tag_index("t.xml").postings("b")
        shallow, deep = postings.levels_present()
        direct = postings.at_level(shallow)
        assert all(n.level == shallow for n in direct)
        deeper = postings.at_level(deep)
        assert len(direct) + len(deeper) == len(postings)

    def test_empty_level_is_shared_empty_view(self, db):
        postings = db.tag_index("t.xml").postings("b")
        assert postings.at_level(99) is EMPTY_POSTINGS

    def test_partitions_cached(self, db):
        postings = db.tag_index("t.xml").postings("b")
        level = postings.levels_present()[0]
        assert postings.at_level(level) is postings.at_level(level)

    def test_levels_present(self, db):
        postings = db.tag_index("t.xml").postings("b")
        assert postings.levels_present() == sorted(
            {n.level for n in postings}
        )

    def test_partition_keeps_record_indexes(self, db):
        postings = db.tag_index("t.xml").postings("b")
        part = postings.at_level(postings.levels_present()[0])
        assert part.record_indexes is not None
        assert len(part.record_indexes) == len(part)


class TestSequenceProtocol:
    def test_len_iter_getitem_contains(self, db):
        postings = db.tag_index("t.xml").postings("a")
        assert len(postings) == 2
        assert list(postings) == [postings[0], postings[1]]
        assert postings[0] in postings
        assert postings[0:1] == (postings[0],)

    def test_equality_against_lists(self, db):
        index = db.tag_index("t.xml")
        postings = index.postings("a")
        assert postings == list(postings.ids)
        assert postings != list(reversed(postings.ids))
        assert index.postings("missing") == []
        assert postings == Postings(postings.ids)

    def test_hashable(self, db):
        postings = db.tag_index("t.xml").postings("a")
        assert hash(postings) == hash(Postings(postings.ids))


class TestLazyColumns:
    def test_columns_not_built_until_touched(self, db):
        postings = db.tag_index("t.xml").postings("b")
        assert postings._starts is None
        assert postings._ends is None
        assert postings._levels is None
        list(postings)  # iterating ids derives nothing
        assert postings._ends is None
        postings.ends
        assert postings._ends is not None
        assert postings._levels is None

    def test_column_reads_idempotent(self, db):
        postings = db.tag_index("t.xml").postings("b")
        assert postings.ends is postings.ends
        assert postings.levels is postings.levels
        assert postings.starts is postings.starts

    def test_partition_shares_built_columns(self, db):
        postings = db.tag_index("t.xml").postings("b")
        postings.ends  # force the parent column
        level = postings.levels_present()[0]
        part = postings.at_level(level)
        assert tolist(part.ends) == [n.end for n in part.ids]
        # a column the parent never built stays lazy in the child too
        assert part._starts is None

    def test_contains_with_duplicate_free_starts(self, db):
        postings = db.tag_index("t.xml").postings("b")
        for node in postings:
            assert node in postings
        other = db.tag_index("t.xml").postings("a")[0]
        assert other not in postings
        assert "not-a-node" not in postings


class TestImmutability:
    def test_no_list_mutators(self, db):
        postings = db.tag_index("t.xml").postings("a")
        with pytest.raises(AttributeError):
            postings.append(postings[0])
        with pytest.raises(TypeError):
            postings.ids[0] = postings.ids[1]

    def test_no_arbitrary_attributes(self, db):
        postings = db.tag_index("t.xml").postings("a")
        with pytest.raises(AttributeError):
            postings.extra = 1
