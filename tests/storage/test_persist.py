"""Unit tests for binary database persistence."""

import pytest

from repro.errors import StorageError
from repro.storage import Database
from repro.storage.persist import load_database, save_database
from repro.storage.xml_serializer import serialize_stored
from tests.conftest import TINY_AUCTION


@pytest.fixture
def saved(tmp_path, tiny_db):
    path = tmp_path / "auction.tlcdb"
    save_database(tiny_db, path)
    return path, tiny_db


class TestRoundtrip:
    def test_documents_survive(self, saved):
        path, original = saved
        loaded = load_database(path)
        assert loaded.document_names() == original.document_names()

    def test_content_identical(self, saved):
        path, original = saved
        loaded = load_database(path)
        assert serialize_stored(
            loaded.document("auction.xml")
        ) == serialize_stored(original.document("auction.xml"))

    def test_none_values_preserved(self, saved):
        path, original = saved
        loaded = load_database(path)
        doc = loaded.document("auction.xml")
        values = {r.tag: r.value for r in doc.records}
        assert values["people"] is None
        assert values["name"] is not None

    def test_indexes_rebuilt(self, saved):
        path, _ = saved
        loaded = load_database(path)
        assert len(loaded.tag_lookup("auction.xml", "person")) == 3
        assert len(loaded.value_lookup("auction.xml", "age", ">", 25)) == 2

    def test_queries_run_on_loaded_database(self, saved):
        from repro import Engine

        path, original = saved
        engine = Engine(load_database(path))
        result = engine.run(
            'FOR $p IN document("auction.xml")//person '
            "WHERE $p//age > 25 RETURN $p/name"
        )
        assert len(result) == 2

    def test_multiple_documents(self, tmp_path):
        db = Database()
        db.load_xml("a.xml", "<a><x>1</x></a>")
        db.load_xml("b.xml", "<b><y>2</y></b>")
        path = tmp_path / "multi.tlcdb"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.document_names() == ["a.xml", "b.xml"]
        assert len(loaded.tag_lookup("b.xml", "y")) == 1

    def test_xmark_roundtrip(self, tmp_path):
        from repro.xmark import load_xmark

        db = Database()
        doc = load_xmark(db, factor=0.001)
        path = tmp_path / "xmark.tlcdb"
        save_database(db, path)
        loaded = load_database(path)
        assert len(loaded.document("auction.xml")) == len(doc)


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.tlcdb"
        path.write_bytes(b"NOTDB" + b"\x00" * 16)
        with pytest.raises(StorageError):
            load_database(path)

    def test_truncated_file(self, saved, tmp_path):
        path, _ = saved
        data = path.read_bytes()
        short = tmp_path / "short.tlcdb"
        short.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            load_database(short)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tlcdb"
        path.write_bytes(b"")
        with pytest.raises(StorageError):
            load_database(path)
