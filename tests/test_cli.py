"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import main
from tests.conftest import TINY_AUCTION


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "auction.xml"
    path.write_text(TINY_AUCTION)
    return str(path)


QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)


class TestQuery:
    def test_inline_query(self, xml_file, capsys):
        code = main(["query", xml_file, "-q", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "<o>Alice</o>" in out
        assert "<o>Carol</o>" in out

    def test_query_file(self, xml_file, tmp_path, capsys):
        query_path = tmp_path / "q.xq"
        query_path.write_text(QUERY)
        code = main(["query", xml_file, "-f", str(query_path)])
        assert code == 0
        assert "Alice" in capsys.readouterr().out

    def test_engine_selection(self, xml_file, capsys):
        for engine in ("gtp", "tax", "nav"):
            code = main(["query", xml_file, "-q", QUERY, "-e", engine])
            assert code == 0
            assert "Alice" in capsys.readouterr().out

    def test_stats_flag(self, xml_file, capsys):
        code = main(["query", xml_file, "-q", QUERY, "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        assert "trees in" in captured.err
        assert "sjoins=" in captured.err

    def test_optimize_flag(self, xml_file, capsys):
        code = main(["query", xml_file, "-q", QUERY, "-O"])
        assert code == 0
        assert "Alice" in capsys.readouterr().out

    def test_xmark_source(self, capsys):
        code = main([
            "query", "xmark:0.001", "-q",
            'FOR $p IN document("auction.xml")//person RETURN $p/name',
        ])
        assert code == 0
        assert "<name>" in capsys.readouterr().out

    def test_bad_query_reports_error(self, xml_file, capsys):
        code = main(["query", xml_file, "-q", "NOT A QUERY"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        code = main(["query", "/nonexistent.xml", "-q", QUERY])
        assert code == 1


class TestExplain:
    def test_explain_prints_plan(self, xml_file, capsys):
        code = main(["explain", xml_file, "-q", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert "Construct" in out
        assert "Select" in out


class TestGenerate:
    def test_generate_xml(self, tmp_path, capsys):
        out = tmp_path / "doc.xml"
        code = main(["generate", str(out), "--factor", "0.001"])
        assert code == 0
        assert out.exists()
        assert "<site>" in out.read_text()

    def test_generate_tlcdb_and_query_it(self, tmp_path, capsys):
        out = tmp_path / "doc.tlcdb"
        assert main(["generate", str(out), "--factor", "0.001"]) == 0
        capsys.readouterr()
        code = main([
            "query", str(out), "-q",
            'FOR $p IN document("auction.xml")//person RETURN $p/name',
        ])
        assert code == 0
        assert "<name>" in capsys.readouterr().out


class TestBench:
    def test_bench_figure16(self, capsys):
        code = main(["bench", "16", "--factor", "0.001", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OPT" in out

    def test_bench_figure16_trace_breakdown(self, capsys):
        code = main([
            "bench", "16", "--factor", "0.001", "--repeats", "1", "--trace",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "self time per operator" in out
        assert "delta" in out

    def test_bench_figure17_rejects_trace(self, capsys):
        code = main(["bench", "17", "--trace"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestProfile:
    def test_profile_annotated_plan(self, xml_file, capsys):
        code = main(["profile", "-d", xml_file, QUERY])
        captured = capsys.readouterr()
        assert code == 0
        assert "# self " in captured.out
        assert "cum " in captured.out
        assert "out " in captured.out
        assert "-- total" in captured.out
        assert "trees in" in captured.err

    def test_profile_query_flag(self, xml_file, capsys):
        code = main(["profile", "-d", xml_file, "-q", QUERY])
        assert code == 0
        assert "Construct" in capsys.readouterr().out

    def test_profile_baseline_engines(self, xml_file, capsys):
        for engine in ("gtp", "tax"):
            code = main(["profile", "-d", xml_file, "-e", engine, QUERY])
            assert code == 0
            assert "# self " in capsys.readouterr().out

    def test_profile_optimized_and_strict(self, xml_file, capsys):
        code = main(["profile", "-d", xml_file, "-O", "--strict", QUERY])
        assert code == 0
        assert "# self " in capsys.readouterr().out

    def test_profile_dot_flag(self, xml_file, capsys):
        code = main(["profile", "-d", xml_file, "--dot", QUERY])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph plan {")
        assert "self " in out

    def test_profile_rejects_double_query(self, xml_file, capsys):
        assert main(["profile", "-d", xml_file, QUERY, "-q", QUERY]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_blank_query_is_clean_error(self, xml_file, capsys):
        code = main(["profile", "-d", xml_file, "-q", "   "])
        assert code == 1
        assert "empty" in capsys.readouterr().err


class TestExplainDot:
    def test_explain_dot_flag(self, xml_file, capsys):
        code = main(["explain", xml_file, "-q", QUERY, "--dot"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph plan {")
        assert "Construct" in out


class TestLint:
    def test_lint_positional_query(self, capsys):
        code = main(["lint", QUERY])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_query_flag_and_optimize(self, capsys):
        for extra in ([], ["-O"]):
            code = main(["lint", "-q", QUERY] + extra)
            assert code == 0
            assert "clean" in capsys.readouterr().out

    def test_lint_query_file(self, tmp_path, capsys):
        query_path = tmp_path / "q.xq"
        query_path.write_text(QUERY)
        assert main(["lint", "-f", str(query_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_needs_no_document(self, capsys):
        # lint is purely static: no document argument anywhere
        assert main(["lint", QUERY]) == 0
        capsys.readouterr()

    def test_lint_rejects_double_query(self, capsys):
        assert main(["lint", QUERY, "-q", QUERY]) == 1
        assert "error:" in capsys.readouterr().err

    def test_lint_syntax_error_exits_nonzero(self, capsys):
        assert main(["lint", "NOT A QUERY"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_explain_lint_annotates_flow(self, xml_file, capsys):
        code = main(["explain", xml_file, "-q", QUERY, "--lint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "live [" in out
        assert "reads [" in out

    def test_explain_lint_is_tlc_only(self, xml_file, capsys):
        code = main(
            ["explain", xml_file, "-q", QUERY, "-e", "gtp", "--lint"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_explain_lint_shows_cardinality_bounds(self, xml_file, capsys):
        code = main(["explain", xml_file, "-q", QUERY, "--lint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "card [" in out

    def test_lint_severity_threshold_accepts_both_levels(self, capsys):
        for severity in ("error", "warning"):
            code = main(["lint", QUERY, "--severity", severity])
            assert code == 0
            assert "clean" in capsys.readouterr().out


class TestCheck:
    BAD = (
        "_S = None\n"
        "def f():\n"
        "    global _S\n"
        "    _S = 1\n"
    )

    def test_clean_paths_exit_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        code = main(
            ["check", "--pass", "concurrency", "--paths", str(clean)]
        )
        assert code == 0
        assert "0 new" in capsys.readouterr().out

    def test_new_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        code = main(
            ["check", "--pass", "concurrency", "--paths", str(bad)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "CC101" in out and "1 new" in out

    def test_baseline_suppresses_known_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "check", "--pass", "concurrency",
                    "--paths", str(bad),
                    "--baseline", str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "check", "--pass", "concurrency",
                "--paths", str(bad),
                "--baseline", str(baseline),
                "--strict-baseline",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "suppressed" in out

    def test_strict_baseline_fails_on_stale_entries(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        main(
            [
                "check", "--pass", "concurrency",
                "--paths", str(bad),
                "--baseline", str(baseline),
                "--update-baseline",
            ]
        )
        capsys.readouterr()
        bad.write_text("def f():\n    return 1\n")  # the finding is fixed
        relaxed = main(
            [
                "check", "--pass", "concurrency",
                "--paths", str(bad), "--baseline", str(baseline),
            ]
        )
        capsys.readouterr()
        strict = main(
            [
                "check", "--pass", "concurrency",
                "--paths", str(bad), "--baseline", str(baseline),
                "--strict-baseline",
            ]
        )
        out = capsys.readouterr().out
        assert relaxed == 0
        assert strict == 1
        assert "stale" in out

    def test_no_baseline_flag_reports_everything(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        main(
            [
                "check", "--pass", "concurrency",
                "--paths", str(bad),
                "--baseline", str(baseline),
                "--update-baseline",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "check", "--pass", "concurrency",
                "--paths", str(bad),
                "--baseline", str(baseline),
                "--no-baseline",
            ]
        )
        assert code == 1
        assert "1 new" in capsys.readouterr().out
