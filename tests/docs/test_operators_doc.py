"""docs/OPERATORS.md cannot drift: examples run, registry stays covered.

Two guarantees:

* every ``*Op`` operator exported from :mod:`repro.core` has a ``##``
  section in the reference (keyed by the operator's ``name`` attribute,
  e.g. ``DedupOp`` -> ``DuplicateElimination``);
* every fenced ``python`` block in the document executes — the first
  block is the shared setup, each later block runs on a fresh copy of
  the setup namespace, exactly as the document describes.
"""

import re
from pathlib import Path

import pytest

import repro.core as core

DOC = Path(__file__).resolve().parents[2] / "docs" / "OPERATORS.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _operator_classes():
    return [
        getattr(core, export)
        for export in core.__all__
        if export.endswith("Op")
    ]


def _blocks():
    return _BLOCK.findall(DOC.read_text())


def test_every_registered_operator_has_a_section():
    text = DOC.read_text()
    headings = set(re.findall(r"^## (.+)$", text, re.MULTILINE))
    missing = {
        cls.name
        for cls in _operator_classes()
        if cls.name not in headings
    }
    assert not missing, (
        f"operators exported from repro.core but undocumented in "
        f"docs/OPERATORS.md: {sorted(missing)}"
    )


def test_every_operator_section_names_a_registered_operator():
    """No stale sections for operators that no longer exist."""
    known = {cls.name for cls in _operator_classes()}
    prose = {
        "Annotated pattern trees and edge annotations",
        "Batch forms",
        "Cost hooks",
        "Setup shared by the examples",
    }
    text = DOC.read_text()
    for heading in re.findall(r"^## (.+)$", text, re.MULTILINE):
        if heading in prose:
            continue
        assert heading in known, (
            f"docs/OPERATORS.md section {heading!r} does not match any "
            f"operator exported from repro.core"
        )


def test_setup_block_comes_first_and_defines_the_database():
    blocks = _blocks()
    assert len(blocks) >= 2, "expected a setup block plus examples"
    namespace = {}
    exec(compile(blocks[0], str(DOC), "exec"), namespace)  # noqa: S102
    assert "db" in namespace and "persons" in namespace


@pytest.mark.parametrize(
    "index", range(1, len(_BLOCK.findall(DOC.read_text())))
)
def test_example_block_executes(index):
    blocks = _blocks()
    namespace = {}
    exec(compile(blocks[0], str(DOC), "exec"), namespace)  # noqa: S102
    exec(  # noqa: S102 - executing our own documentation is the point
        compile(blocks[index], f"{DOC}#block{index}", "exec"), namespace
    )
