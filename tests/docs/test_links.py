"""The markdown link checker passes on the repo's own documentation."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_doc_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_doc_links.py")],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, (
        f"broken documentation links:\n{proc.stderr}{proc.stdout}"
    )


def test_checker_flags_a_broken_link(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("# T\n\nsee [missing](does-not-exist.md)\n")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "tools" / "check_doc_links.py"),
            str(page),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "broken link" in proc.stderr
