"""docs/CLI.md cannot drift: every documented invocation is executed.

Each ``bash`` fence in the page contributes its command lines; every
``python -m repro …`` invocation is run in-process via ``main()`` (with
the documented stdin for piped ``serve`` lines) from a temp directory,
and must exit 0.  A documented command that stops working — renamed
flag, removed subcommand — fails here before a reader finds out.
"""

import io
import re
import shlex
from pathlib import Path

import pytest

from repro.__main__ import main

DOC = Path(__file__).resolve().parents[2] / "docs" / "CLI.md"

_BLOCK = re.compile(r"```bash\n(.*?)```", re.DOTALL)


def documented_commands():
    """(stdin_text, argv) for every invocation in the page's bash fences."""
    commands = []
    for block in _BLOCK.findall(DOC.read_text()):
        for line in block.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            stdin_text = None
            if "|" in line:
                producer, line = (part.strip() for part in line.split("|", 1))
                echoed = shlex.split(producer)
                assert echoed[0] == "echo", f"unexpected producer: {producer}"
                stdin_text = " ".join(echoed[1:]) + "\n"
            words = shlex.split(line)
            assert words[:3] == ["python", "-m", "repro"], (
                f"docs/CLI.md bash fences must hold repro invocations: {line}"
            )
            commands.append((stdin_text, words[3:]))
    return commands


COMMANDS = documented_commands()


def test_the_page_documents_every_subcommand():
    subcommands = {argv[0] for _, argv in COMMANDS}
    assert subcommands == {
        "generate",
        "query",
        "explain",
        "plan",
        "lint",
        "profile",
        "bench",
        "prepare",
        "serve",
        "stats",
        "tail",
        "check",
        "calibrate",
    }


@pytest.mark.parametrize(
    "stdin_text,argv",
    COMMANDS,
    ids=[" ".join(argv[:2]) for _, argv in COMMANDS],
)
def test_documented_invocation_runs(stdin_text, argv, tmp_path, monkeypatch,
                                    capsys):
    monkeypatch.chdir(tmp_path)  # generate writes auction.xml / auction.tlcdb
    if "auction.tlcdb" in argv:
        assert main(["generate", "auction.tlcdb", "--factor", "0.001"]) == 0
        capsys.readouterr()
    if "CALIBRATION.json" in argv and argv[0] != "calibrate":
        # explain --calibration reads a table; write one the way the
        # calibrate fence does
        assert main([
            "calibrate", "--factor", "0.002", "--repeats", "1",
            "-o", "CALIBRATION.json",
        ]) == 0
        capsys.readouterr()
    if "qlog.jsonl" in argv and argv[0] != "serve":
        # stats/tail read a query log; seed one the way serve writes it
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                'FOR $p IN document("auction.xml")//person '
                "RETURN $p/name\n"
            ),
        )
        assert main([
            "serve", "xmark:0.001",
            "--slow-ms", "0", "--query-log", "qlog.jsonl",
        ]) == 0
        capsys.readouterr()
    if stdin_text is not None:
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
    assert main(argv) == 0, f"documented command failed: {argv}"
