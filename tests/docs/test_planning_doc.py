"""docs/PLANNING.md cannot drift: every example runs, claims stay true.

Same convention as the operators reference: the first fenced ``python``
block is the shared setup (engine + statistics + the walkthrough
query), each later block executes on a fresh copy of the setup
namespace.  The page's central claims — the planner reorders the
walkthrough query's join site, the decision record round-trips at
schema version 1, planned results stay byte-identical — are assertions
inside the documented examples themselves, so a planner change that
breaks the prose fails here.
"""

import re
from pathlib import Path

import pytest

DOC = Path(__file__).resolve().parents[2] / "docs" / "PLANNING.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks():
    return _BLOCK.findall(DOC.read_text())


def test_setup_block_comes_first_and_defines_the_engine():
    blocks = _blocks()
    assert len(blocks) >= 2, "expected a setup block plus examples"
    namespace = {}
    exec(compile(blocks[0], str(DOC), "exec"), namespace)  # noqa: S102
    assert "engine" in namespace and "QUERY" in namespace
    assert "stats" in namespace


@pytest.mark.parametrize(
    "index", range(1, len(_BLOCK.findall(DOC.read_text())))
)
def test_example_block_executes(index):
    blocks = _blocks()
    namespace = {}
    exec(compile(blocks[0], str(DOC), "exec"), namespace)  # noqa: S102
    exec(  # noqa: S102 - executing our own documentation is the point
        compile(blocks[index], f"{DOC}#block{index}", "exec"), namespace
    )


def test_the_page_documents_every_choice_kind():
    """The decision-kinds table stays in sync with the code."""
    from repro.planner import CHOICE_KINDS

    text = DOC.read_text()
    for kind in CHOICE_KINDS:
        assert f"`{kind}`" in text, (
            f"docs/PLANNING.md does not document choice kind {kind!r}"
        )


def test_the_documented_constants_match_the_code():
    """Every constant the prose quotes carries its current value."""
    from repro import planner

    text = DOC.read_text()
    quoted = {
        "PREDICATE_SELECTIVITY": "0.25",
        "MAX_EXHAUSTIVE_EDGES": "5",
        "LEGACY_JOIN_FACTOR": "2.5",
        "BATCH_SAVING_PER_ROW": "0.15",
        "BATCH_CONVERT_PER_ROW": "0.5",
        "TREE_VETO_MARGIN": "2.0",
        "FEEDBACK_CAPACITY": "128",
    }
    for name, value in quoted.items():
        assert float(value) == float(getattr(planner, name)), (
            f"{name} drifted from the value docs/PLANNING.md quotes"
        )
        assert name in text and value in text, (
            f"docs/PLANNING.md no longer quotes {name} = {value}"
        )
