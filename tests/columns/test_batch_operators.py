"""Randomized equivalence: each batch operator form vs its per-tree twin.

Random labelled forests are flattened into :class:`ColumnBatch` rows and
pushed through ``execute_batch``; the same forests as materialised trees
go through ``execute``.  The two paths must agree on the serialised
output for every operator, seed and parameter choice — the property the
hand-written XMark sweep cannot cover (it only sees the label shapes the
query translator emits).
"""

import random

import pytest

from repro.columns.batch import ColumnBatch, use_batch
from repro.core import (
    AggregateOp,
    ClassPredicate,
    Context,
    DedupOp,
    FilterOp,
    ProjectOp,
    SortOp,
    UnionOp,
)
from repro.errors import CardinalityError
from repro.model.node_id import NodeId
from repro.storage import Database

SEEDS = range(8)

TAGS = ("item", "name", "price", "bid", "note")
VALUES = (None, 0, 1, 7, 42, "a", "b", "zz", 3.5)


def random_forest(rng, rows=None):
    """Flattened random forest: the builder lists of a ColumnBatch.

    Nodes carry interval ids in pre-order (a valid document numbering)
    and at most one class label each, as batch-built witnesses do.
    """
    offsets = [0]
    tags, values, nids, labels, parents = [], [], [], [], []
    counter = [0]

    def grow(depth, parent_rel, base):
        position = len(tags) - base
        start = counter[0] = counter[0] + 1
        tags.append(rng.choice(TAGS))
        values.append(rng.choice(VALUES))
        nids.append(None)  # fixed up once the subtree span is known
        labels.append(rng.choice((0, 0, 1, 1, 2, 2, 3, 4)))
        parents.append(parent_rel)
        slot = len(nids) - 1
        if depth < 3:
            for _ in range(rng.randint(0, 3 - depth)):
                grow(depth + 1, position, base)
        end = counter[0] = counter[0] + 1
        nids[slot] = NodeId(doc=1, start=start, end=end, level=depth)

    for _ in range(rows if rows is not None else rng.randint(0, 6)):
        grow(0, -1, offsets[-1])
        offsets.append(len(tags))
    return offsets, tags, values, nids, labels, parents


def batch_and_trees(rng, rows=None):
    """The same random forest as a batch and as an independent sequence."""
    built = random_forest(rng, rows)
    batch = ColumnBatch.from_lists(*[
        list(column) if isinstance(column, list) else column
        for column in built
    ])
    trees = ColumnBatch.from_lists(*[list(c) for c in built]).materialize()
    return batch, trees


def outcome(op, ctx, payload, batched):
    """Serialised result (or the raised error type) of one execution."""
    try:
        if batched:
            result = op.execute_batch(ctx, payload)
            if isinstance(result, ColumnBatch):
                result = result.materialize()
        else:
            result = op.execute(ctx, payload)
    except CardinalityError:
        return "CardinalityError"
    return [tree.to_xml() for tree in result]


def assert_equivalent(op, batch, trees, extra=()):
    ctx = Context(Database())
    tree_inputs = [trees] + [item.materialize() for item in extra]
    batch_inputs = [batch] + list(extra)
    with use_batch(True):
        assert outcome(op, ctx, batch_inputs, batched=True) == \
            outcome(op, ctx, tree_inputs, batched=False)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", ("E", "ALO", "EX", "FIRST"))
def test_filter_equivalence(seed, mode):
    rng = random.Random(seed * 31 + hash(mode) % 1000)
    batch, trees = batch_and_trees(rng)
    predicate = ClassPredicate(
        rng.choice((1, 2, 3)), rng.choice(("=", "!=", ">", "<")),
        rng.choice((1, 7, "a")),
    )
    assert_equivalent(FilterOp(predicate, mode), batch, trees)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("by", ("id", "content"))
def test_dedup_equivalence(seed, by):
    rng = random.Random(seed * 17 + len(by))
    batch, trees = batch_and_trees(rng)
    lcls = rng.sample((1, 2, 3, 4), rng.randint(1, 2))
    assert_equivalent(DedupOp(lcls, by), batch, trees)


@pytest.mark.parametrize("seed", SEEDS)
def test_union_equivalence(seed):
    rng = random.Random(seed * 13)
    batch_a, trees_a = batch_and_trees(rng)
    batch_b, _ = batch_and_trees(rng)
    dedup = rng.choice((None, 1, 2))
    assert_equivalent(
        UnionOp([None, None], dedup_lcl=dedup),
        batch_a, trees_a, extra=[batch_b],
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("descending", (False, True))
def test_sort_equivalence(seed, descending):
    rng = random.Random(seed * 7 + descending)
    batch, trees = batch_and_trees(rng)
    lcls = rng.sample((1, 2, 3), rng.randint(1, 2))
    assert_equivalent(SortOp(lcls, descending), batch, trees)


@pytest.mark.parametrize("seed", SEEDS)
def test_project_equivalence(seed):
    rng = random.Random(seed * 11)
    batch, trees = batch_and_trees(rng)
    keep = rng.sample((1, 2, 3, 4), rng.randint(1, 3))
    assert_equivalent(ProjectOp(keep), batch, trees)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("fname", ("count", "sum", "avg", "min", "max"))
def test_aggregate_equivalence(seed, fname):
    rng = random.Random(seed * 5 + len(fname))
    batch, trees = batch_and_trees(rng, rows=rng.randint(1, 5))
    assert_equivalent(AggregateOp(fname, rng.choice((1, 2, 3)), 9),
                      batch, trees)


@pytest.mark.parametrize("seed", SEEDS)
def test_fallback_adapter_equivalence(seed):
    """The base-class fallback (materialise, delegate) is also exact."""
    rng = random.Random(seed * 3)
    batch, trees = batch_and_trees(rng)
    op = ProjectOp([1, 2], with_subtrees=False)
    ctx = Context(Database())
    from repro.core.base import Operator

    fallback = Operator.execute_batch(op, ctx, [batch])
    direct = op.execute(ctx, [trees])
    assert [t.to_xml() for t in fallback] == [t.to_xml() for t in direct]
    assert ctx.metrics.batch_fallbacks == 1
