"""Unit tests for the columnar batch currency and its array backend."""

import pytest

from repro.columns.arrays import (
    backend_name,
    concat_columns,
    int_column,
    numpy_available,
    numpy_enabled,
    positions_where_equal,
    shift_column,
    take,
    tolist,
    use_numpy,
)
from repro.columns.batch import (
    ColumnBatch,
    as_tree_sequence,
    batch_enabled,
    set_batch,
    use_batch,
)
from repro.model.node_id import NodeId
from repro.storage.stats import Metrics


def nid(start, end, level, doc=1):
    return NodeId(doc, start, end, level)


def two_row_batch() -> ColumnBatch:
    """Two small trees::

        a(lcl=1)            x(lcl=1)
          b(lcl=2, "v1")      y(lcl=3, "v3")
          c("v2")
    """
    return ColumnBatch.from_lists(
        offsets=[0, 3, 5],
        tags=["a", "b", "c", "x", "y"],
        values=[None, "v1", "v2", None, "v3"],
        nids=[
            nid(1, 10, 1), nid(2, 3, 2), nid(4, 5, 2),
            nid(20, 25, 1), nid(21, 22, 2),
        ],
        labels=[1, 2, 0, 1, 3],
        parents=[-1, 0, 0, -1, 0],
    )


class TestArrays:
    def test_int_column_roundtrip(self):
        column = int_column([3, 1, 2])
        assert tolist(column) == [3, 1, 2]
        assert len(column) == 3

    def test_take_and_positions(self):
        column = int_column([5, 7, 5, 9])
        assert tolist(take(column, [0, 3])) == [5, 9]
        assert positions_where_equal(column, 5) == [0, 2]

    def test_shift_and_concat(self):
        column = int_column([1, 2])
        assert tolist(shift_column(column, 10)) == [11, 12]
        assert shift_column(column, 0) is column
        merged = concat_columns([int_column([1]), int_column([2, 3])])
        assert tolist(merged) == [1, 2, 3]

    def test_backend_switch_is_scoped(self):
        before = numpy_enabled()
        with use_numpy(False):
            assert not numpy_enabled()
            assert backend_name() == "array"
        assert numpy_enabled() == before

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_numpy_backend_agrees_with_pure(self):
        with use_numpy(True):
            accel = int_column([4, 5, 6])
            assert backend_name() == "numpy"
        with use_numpy(False):
            pure = int_column([4, 5, 6])
        assert tolist(accel) == tolist(pure)
        assert positions_where_equal(accel, 5) == \
            positions_where_equal(pure, 5)


class TestBatchSwitch:
    def test_use_batch_is_scoped(self):
        before = batch_enabled()
        with use_batch(False):
            assert not batch_enabled()
            with use_batch(True):
                assert batch_enabled()
        assert batch_enabled() == before

    def test_set_batch_returns_previous(self):
        previous = set_batch(False)
        try:
            assert set_batch(previous) is False
        finally:
            set_batch(previous)


class TestColumnBatch:
    def test_len_and_row_slices(self):
        batch = two_row_batch()
        assert len(batch) == 2
        assert bool(batch)
        assert batch.row_slice(0) == (0, 3)
        assert batch.row_slice(1) == (3, 5)
        assert not ColumnBatch.empty()

    def test_class_positions_and_values(self):
        batch = two_row_batch()
        assert batch.class_positions(0, 1) == [0]
        assert batch.class_positions(0, 2) == [1]
        assert batch.class_positions(1, 3) == [4]
        assert batch.class_positions(0, 9) == []
        assert batch.class_values(0, 2) == ["v1"]

    def test_row_order_key_is_root_document_order(self):
        batch = two_row_batch()
        assert batch.row_order_key(0) < batch.row_order_key(1)

    def test_select_rows_reorders_and_duplicates(self):
        batch = two_row_batch()
        picked = batch.select_rows([1, 0, 1])
        assert len(picked) == 3
        assert picked.tags[:2] == ["x", "y"]
        assert picked.tags[2:5] == ["a", "b", "c"]
        assert list(picked.offsets) == [0, 2, 5, 7]
        # parents stay row-relative after the copy
        assert picked.parents[1] == 0 and picked.parents[3] == 0

    def test_select_rows_identity_shares_the_batch(self):
        batch = two_row_batch()
        assert batch.select_rows([0, 1]) is batch
        assert batch.select_rows([1, 0]) is not batch

    def test_concat_shifts_offsets(self):
        first, second = two_row_batch(), two_row_batch()
        merged = ColumnBatch.concat([first, second])
        assert len(merged) == 4
        assert list(merged.offsets) == [0, 3, 5, 8, 10]
        assert merged.tags[5:8] == ["a", "b", "c"]

    def test_canonical_node_matches_tnode_canonical(self):
        batch = two_row_batch()
        trees = batch.materialize()
        assert batch.canonical_node(0, True) == trees[0].root.canonical(True)
        assert batch.canonical_node(3, False) == \
            trees[1].root.canonical(False)

    def test_subtree_node_rebuilds_the_slice(self):
        batch = two_row_batch()
        node = batch.subtree_node(0)
        assert node.tag == "a"
        assert [child.tag for child in node.children] == ["b", "c"]
        assert node.children[0].lcls == {2}
        assert node.children[1].lcls == set()

    def test_interval_columns_mark_temp_ids(self):
        batch = ColumnBatch.from_lists(
            [0, 2], ["r", "t"], [None, None],
            [nid(1, 4, 0), None], [0, 0], [-1, 0],
        )
        starts, ends, levels = batch.interval_columns()
        assert tolist(starts) == [1, -1]
        assert tolist(ends) == [4, -1]
        assert tolist(levels) == [0, -1]

    def test_materialize_builds_indexed_trees_once(self):
        batch = two_row_batch()
        metrics = Metrics()
        trees = batch.materialize(metrics)
        assert metrics.trees_built == 2
        assert [t.root.tag for t in trees] == ["a", "x"]
        # LC index pre-derived from the label column
        assert [n.tag for n in trees[0].nodes_in_class(2)] == ["b"]
        assert trees[0].root.lcls == {1}
        # cached: a second materialisation returns the same sequence
        assert batch.materialize(metrics) is trees
        assert metrics.trees_built == 2

    def test_as_tree_sequence_meters_fallback_once(self):
        batch = two_row_batch()
        metrics = Metrics()
        as_tree_sequence(batch, metrics, fallback=True)
        assert metrics.batch_fallbacks == 1
        # already materialised: later conversions are free, not fallbacks
        as_tree_sequence(batch, metrics, fallback=True)
        assert metrics.batch_fallbacks == 1

    def test_as_tree_sequence_passes_trees_through(self):
        trees = two_row_batch().materialize()
        assert as_tree_sequence(trees) is trees

    def test_pure_python_columns_are_plain_lists(self):
        with use_numpy(False):
            batch = two_row_batch()
            assert isinstance(batch.labels, list)
            assert isinstance(batch.parents, list)

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_numpy_columns_are_arrays(self):
        with use_numpy(True):
            batch = two_row_batch()
        assert type(batch.labels).__module__ == "numpy"
