"""Integration: the README / docstring quickstart snippets work as shown."""

from repro import Engine


class TestReadmeSnippets:
    def test_package_docstring_example(self):
        engine = Engine()
        engine.load_xmark(factor=0.002)
        result = engine.run(
            'FOR $p IN document("auction.xml")//person '
            "WHERE $p//age > 60 RETURN $p/name"
        )
        assert result.to_xml() is not None
        assert all(t.root.tag == "name" for t in result)

    def test_readme_q1_example(self):
        engine = Engine()
        engine.load_xmark(factor=0.005)
        result = engine.run('''
            FOR $p IN document("auction.xml")//person
            FOR $o IN document("auction.xml")//open_auction
            WHERE count($o/bidder) > 5 AND $p//age > 25
              AND $p/@id = $o/bidder//@person
            RETURN <person name={$p/name/text()}> $o/bidder </person>
        ''')
        for tree in result:
            assert tree.root.tag == "person"
            bidders = [
                c for c in tree.root.children if c.tag == "bidder"
            ]
            assert len(bidders) > 5

    def test_api_surface(self):
        """Everything the README shows is importable and callable."""
        import repro

        for name in (
            "Engine", "ENGINES", "Database", "TreeSequence", "XTree",
            "ReproError", "parse_xml",
        ):
            assert hasattr(repro, name)
        assert repro.ENGINES == ("tlc", "tax", "gtp", "nav")


class TestExamplesAreRunnable:
    def test_quickstart_main(self, capsys):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).parents[2] / "examples" / "quickstart.py"
        spec = importlib.util.spec_from_file_location("qs", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        output = capsys.readouterr().out
        assert "Results" in output
        assert "<person name=" in output
