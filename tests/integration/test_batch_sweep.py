"""Integration sweep: the batch runtime is invisible except in the clock.

Every XMark benchmark query runs in three configurations — batch off
(the per-tree fast path), batch on with pure-Python columns, and batch
on with numpy columns — and must produce the *same trees in the same
order*.  On top of output equality, the batch configurations must never
do more metered work than the per-tree path: staying columnar only ever
removes tree builds and index walks, never adds them.
"""

import pytest

from repro.bench.fastpath import WORK_COUNTERS
from repro.columns.arrays import numpy_available, use_numpy
from repro.columns.batch import use_batch
from repro.xmark import FIGURE15_ORDER, QUERIES


def _run(engine, name, batch, numpy=False, optimize=False):
    with use_batch(batch), use_numpy(numpy and numpy_available()):
        engine.db.reset_metrics()
        result = engine.run(
            QUERIES[name].text, engine="tlc", optimize=optimize
        )
        counters = engine.db.metrics.snapshot()
    return [tree.to_xml() for tree in result], counters


@pytest.mark.parametrize("name", FIGURE15_ORDER)
def test_batch_configurations_match_per_tree(xmark_engine, name):
    per_tree, tree_counters = _run(xmark_engine, name, batch=False)
    pure, pure_counters = _run(xmark_engine, name, batch=True)
    assert pure == per_tree, f"{name}: batch runtime changed the result"
    if numpy_available():
        accel, _ = _run(xmark_engine, name, batch=True, numpy=True)
        assert accel == per_tree, f"{name}: numpy columns changed the result"
    grew = {
        key: (tree_counters.get(key, 0), pure_counters.get(key, 0))
        for key in WORK_COUNTERS
        if pure_counters.get(key, 0) > tree_counters.get(key, 0)
    }
    assert not grew, f"{name}: batch runtime increased work counters {grew}"


@pytest.mark.parametrize("name", ("x8", "x10", "x10a", "x14", "x20"))
def test_optimized_pipeline_equivalence(xmark_engine, name):
    """The -O pipeline (Shadow/Illuminate, Flatten) stays equivalent too."""
    per_tree, _ = _run(xmark_engine, name, batch=False, optimize=True)
    pure, _ = _run(xmark_engine, name, batch=True, optimize=True)
    assert pure == per_tree
    if numpy_available():
        accel, _ = _run(xmark_engine, name, batch=True, numpy=True,
                        optimize=True)
        assert accel == per_tree


def test_batch_counters_meter_columnar_execution(xmark_engine):
    """A batch run advances batch_ops/batch_rows; the per-tree run none."""
    with use_batch(True):
        xmark_engine.db.reset_metrics()
        xmark_engine.run(QUERIES["x5"].text, engine="tlc")
        on = xmark_engine.db.metrics.snapshot()
    assert on["batch_ops"] > 0
    assert on["batch_rows"] > 0
    with use_batch(False):
        xmark_engine.db.reset_metrics()
        xmark_engine.run(QUERIES["x5"].text, engine="tlc")
        off = xmark_engine.db.metrics.snapshot()
    assert off["batch_ops"] == 0
    assert off["batch_rows"] == 0
    assert off["batch_fallbacks"] == 0


def test_fallback_metered_for_operators_without_batch_form(xmark_engine):
    """A join query crosses the boundary and meters batch_fallbacks."""
    with use_batch(True):
        xmark_engine.db.reset_metrics()
        xmark_engine.run(QUERIES["Q1"].text, engine="tlc")
        counters = xmark_engine.db.metrics.snapshot()
    assert counters["batch_fallbacks"] > 0


def test_trace_marks_columnar_operators(xmark_engine):
    """EXPLAIN ANALYZE shows which plan region stayed batch-at-a-time."""
    from repro.trace.render import render_trace_json, trace_to_json

    with use_batch(True):
        report = xmark_engine.measure(
            QUERIES["x5"].text, engine="tlc", trace=True, label="x5"
        )
    trace = report.trace
    flags = {record.name: record.batch for record in trace.records}
    assert flags["Filter"] and flags["Aggregate"]
    # Construct consumes columns but emits trees: not marked columnar
    assert not flags["Construct"]
    rendered = trace.render()
    assert "batch" in rendered
    # the batch flag survives the JSON round trip
    assert render_trace_json(trace_to_json(trace)) == rendered
