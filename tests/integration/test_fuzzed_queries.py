"""Integration: fuzzed queries agree across all four engines.

The fuzzer emits random schema-aware queries inside the Figure 5
fragment; each must parse, translate under all three algebraic builders,
evaluate under all four engines with content-identical results, and stay
result-stable under the Section 4 rewrites.
"""

import pytest

from repro.xquery.fuzz import QueryFuzzer, sample_queries
from repro.xquery.parser import parse_query
from tests.conftest import canonical_sorted

#: One reproducible batch; seeds chosen arbitrarily.
BATCH = sample_queries(25, seed=20040613)


class TestFuzzerOutput:
    def test_deterministic(self):
        assert sample_queries(5, seed=1) == sample_queries(5, seed=1)

    def test_seed_changes_output(self):
        assert sample_queries(5, seed=1) != sample_queries(5, seed=2)

    @pytest.mark.parametrize("index", range(len(BATCH)))
    def test_queries_parse(self, index):
        parse_query(BATCH[index])


@pytest.mark.parametrize("index", range(len(BATCH)))
def test_fuzzed_query_cross_engine(xmark_engine, index):
    query = BATCH[index]
    reference = canonical_sorted(xmark_engine.run(query, engine="tlc"))
    for engine in ("gtp", "tax", "nav"):
        assert reference == canonical_sorted(
            xmark_engine.run(query, engine=engine)
        ), f"{engine} diverged on:\n{query}"


@pytest.mark.parametrize("index", range(0, len(BATCH), 3))
def test_fuzzed_query_rewrite_stable(xmark_engine, index):
    query = BATCH[index]
    plain = canonical_sorted(xmark_engine.run(query, engine="tlc"))
    optimized = canonical_sorted(
        xmark_engine.run(query, engine="tlc", optimize=True)
    )
    assert plain == optimized, f"rewrites changed results for:\n{query}"
