"""Integration: all four engines agree on every benchmark query.

This is the repository's strongest correctness check — TLC, TAX, GTP and
the navigational interpreter are four independent implementations of the
same query semantics, so content-identical output on the full XMark suite
cross-validates all of them.
"""

import pytest

from repro.xmark import FIGURE15_ORDER, QUERIES
from tests.conftest import canonical_sorted

#: x9 under NAV is cubic (nested loops over three sources); keep it out of
#: the every-commit matrix and cover it in the slow marker test below.
_FAST = [name for name in FIGURE15_ORDER if name != "x9"]


@pytest.mark.parametrize("name", _FAST)
def test_engines_agree(xmark_engine, name):
    query = QUERIES[name].text
    reference = canonical_sorted(xmark_engine.run(query, engine="tlc"))
    assert reference == canonical_sorted(
        xmark_engine.run(query, engine="gtp")
    ), f"{name}: GTP diverges from TLC"
    assert reference == canonical_sorted(
        xmark_engine.run(query, engine="tax")
    ), f"{name}: TAX diverges from TLC"
    assert reference == canonical_sorted(
        xmark_engine.run(query, engine="nav")
    ), f"{name}: NAV diverges from TLC"


@pytest.mark.parametrize("name", FIGURE15_ORDER)
def test_tlc_produces_output_or_valid_empty(xmark_engine, name):
    """Every query runs; empty results only where selectivity explains it."""
    result = xmark_engine.run(QUERIES[name].text, engine="tlc")
    assert result is not None
    if name not in ("x1", "x4", "x10a", "Q1", "x16"):  # selective ones
        assert len(result) > 0, f"{name} unexpectedly empty"


def test_x9_all_engines_agree(xmark_engine):
    """The cubic NAV case, run once."""
    query = QUERIES["x9"].text
    reference = canonical_sorted(xmark_engine.run(query, engine="tlc"))
    for engine in ("gtp", "tax", "nav"):
        assert reference == canonical_sorted(
            xmark_engine.run(query, engine=engine)
        )


def test_document_order_of_tlc_output(xmark_engine):
    """x19's ORDER BY must order by the key across engines."""
    query = QUERIES["x19"].text
    result = xmark_engine.run(query, engine="tlc")
    locations = [
        tree.nodes_in_class_values
        if hasattr(tree, "nodes_in_class_values")
        else [
            c.value
            for n in tree.root.walk()
            for c in [n]
            if c.tag == "loc"
        ]
        for tree in result
    ]
    flat = [loc[0] for loc in locations if loc]
    assert flat == sorted(flat)
