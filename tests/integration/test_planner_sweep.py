"""Integration sweep: cost-based planning changes the clock, not the answer.

Every XMark benchmark query runs planner-off (the translator's shape on
the static fast path) and planner-on (edge orders, currency and engine
chosen by the cost model) and must produce the *same trees in the same
order* — the reordered structural-join cascade is invisible because the
matcher restores both slot and variant order.  The planned plan must
also survive strict LC-flow linting: annotations never break the
analyzer's view of the plan.
"""

import pytest

from repro.planner import use_planner
from repro.xmark import FIGURE15_ORDER, QUERIES


def _run(engine, name, planner, optimize=False):
    with use_planner(planner):
        engine.db.reset_metrics()
        result = engine.run(
            QUERIES[name].text, engine="tlc", optimize=optimize
        )
        counters = engine.db.metrics.snapshot()
    return [tree.to_xml() for tree in result], counters


@pytest.mark.parametrize("name", FIGURE15_ORDER)
def test_planned_results_match_static(xmark_engine, name):
    static, _ = _run(xmark_engine, name, planner=False)
    planned, counters = _run(xmark_engine, name, planner=True)
    assert planned == static, f"{name}: the planner changed the result"
    assert counters["planner_plans"] >= 1
    # the static side never pays for planning
    _, static_counters = _run(xmark_engine, name, planner=False)
    assert static_counters["planner_plans"] == 0


@pytest.mark.parametrize("name", ("x5", "x9", "x12", "Q2", "x10a"))
def test_reordering_queries_stay_identical_and_lint(xmark_engine, name):
    """The queries the planner actually reorders (BENCH_9), strictly."""
    static, _ = _run(xmark_engine, name, planner=False)
    with use_planner(True):
        xmark_engine.db.reset_metrics()
        result = xmark_engine.run(
            QUERIES[name].text, engine="tlc", strict=True
        )
        counters = xmark_engine.db.metrics.snapshot()
    assert [tree.to_xml() for tree in result] == static
    if name == "x9":  # the documented walkthrough query reorders here
        assert counters["planner_reorders"] == 1


@pytest.mark.parametrize("name", ("x8", "x10", "x10a", "x14", "x20"))
def test_optimized_pipeline_equivalence(xmark_engine, name):
    """Planning composes with the -O rewrites without changing results."""
    static, _ = _run(xmark_engine, name, planner=False, optimize=True)
    planned, _ = _run(xmark_engine, name, planner=True, optimize=True)
    assert planned == static
