"""Integration sweep: the fast path is invisible except in the clock.

Every XMark benchmark query runs in three configurations — the seed
behaviour (legacy joins, no scan cache), the fast path without the
cache, and the full fast configuration — and must produce the *same
trees in the same order*.  On top of output equality, the full fast
configuration must never do more metered work than the seed: caching
and skipping only ever remove index probes, record fetches and
comparisons, never add them.
"""

import pytest

from repro.bench.fastpath import WORK_COUNTERS
from repro.physical.structural_join import use_fast_path
from repro.xmark import FIGURE15_ORDER, QUERIES


def _run(engine, name, fast, scan_cache, optimize=False):
    with use_fast_path(fast):
        engine.db.reset_metrics()
        result = engine.run(
            QUERIES[name].text,
            engine="tlc",
            optimize=optimize,
            scan_cache=scan_cache,
        )
        counters = engine.db.metrics.snapshot()
    return [tree.to_xml() for tree in result], counters


@pytest.mark.parametrize("name", FIGURE15_ORDER)
def test_fast_configurations_match_seed(xmark_engine, name):
    seed, seed_counters = _run(
        xmark_engine, name, fast=False, scan_cache=False
    )
    fast_uncached, _ = _run(
        xmark_engine, name, fast=True, scan_cache=False
    )
    fast_cached, fast_counters = _run(
        xmark_engine, name, fast=True, scan_cache=True
    )
    assert fast_uncached == seed, f"{name}: fast path changed the result"
    assert fast_cached == seed, f"{name}: scan cache changed the result"
    grew = {
        key: (seed_counters.get(key, 0), fast_counters.get(key, 0))
        for key in WORK_COUNTERS
        if fast_counters.get(key, 0) > seed_counters.get(key, 0)
    }
    assert not grew, f"{name}: fast path increased work counters {grew}"


@pytest.mark.parametrize("name", ("x8", "x10", "x10a", "x14", "x20"))
def test_optimized_pipeline_equivalence(xmark_engine, name):
    """The -O pipeline (Shadow/Illuminate, Flatten) stays equivalent too."""
    seed, _ = _run(
        xmark_engine, name, fast=False, scan_cache=False, optimize=True
    )
    fast, _ = _run(
        xmark_engine, name, fast=True, scan_cache=True, optimize=True
    )
    assert fast == seed


def test_cache_hits_observed_on_repeat_scans(xmark_engine):
    """A query that scans the same tag twice registers cache hits."""
    with use_fast_path(True):
        xmark_engine.db.reset_metrics()
        xmark_engine.run(QUERIES["x10"].text, engine="tlc")
        assert xmark_engine.db.metrics.scan_cache_hits > 0
