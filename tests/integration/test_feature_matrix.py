"""Feature × engine matrix: each fragment feature, all four engines.

One focused query per grammar feature, executed under every engine and
compared content-wise — a finer-grained complement to the XMark suite.
"""

import pytest

from tests.conftest import canonical_sorted

FEATURES = {
    "simple_eq": (
        'FOR $p IN document("auction.xml")//person '
        'WHERE $p/@id = "p2" RETURN $p/name'
    ),
    "simple_range": (
        'FOR $o IN document("auction.xml")//open_auction '
        "WHERE $o/initial >= 50 RETURN <r>{$o/initial/text()}</r>"
    ),
    "count_gt": (
        'FOR $o IN document("auction.xml")//open_auction '
        "WHERE count($o/bidder) > 0 RETURN <n>{count($o/bidder)}</n>"
    ),
    "sum_aggregate": (
        'FOR $o IN document("auction.xml")//open_auction '
        "WHERE sum($o/bidder/increase) > 10 "
        "RETURN <s>{$o/quantity/text()}</s>"
    ),
    "avg_aggregate_return": (
        'FOR $o IN document("auction.xml")//open_auction '
        "RETURN <avg>{avg($o/bidder/increase)}</avg>"
    ),
    "min_max": (
        'FOR $o IN document("auction.xml")//open_auction '
        "WHERE max($o/bidder/increase) >= 25 "
        "RETURN <m>{min($o/bidder/increase)}</m>"
    ),
    "value_join": (
        'FOR $p IN document("auction.xml")//person '
        'FOR $o IN document("auction.xml")//open_auction '
        "WHERE $p/@id = $o/bidder//@person "
        "RETURN <j>{$p/name/text()}</j>"
    ),
    "theta_join": (
        'FOR $p IN document("auction.xml")//person '
        'FOR $o IN document("auction.xml")//open_auction '
        "WHERE $o/initial < $o/quantity RETURN <t/>"
    ),
    "every_quantifier": (
        'FOR $o IN document("auction.xml")//open_auction '
        "WHERE EVERY $i IN $o/bidder/increase SATISFIES $i > 2 "
        "RETURN <q>{$o/quantity/text()}</q>"
    ),
    "some_quantifier": (
        'FOR $o IN document("auction.xml")//open_auction '
        "WHERE SOME $i IN $o/bidder/increase SATISFIES $i > 20 "
        "RETURN <q>{$o/quantity/text()}</q>"
    ),
    "disjunction": (
        'FOR $o IN document("auction.xml")//open_auction '
        'WHERE $o/@id = "a1" OR $o/@id = "a3" '
        "RETURN <h>{$o/initial/text()}</h>"
    ),
    "contains_fn": (
        'FOR $p IN document("auction.xml")//person '
        'WHERE contains($p/name, "aro") RETURN $p/name'
    ),
    "order_by_desc": (
        'FOR $o IN document("auction.xml")//open_auction '
        "ORDER BY $o/initial Descending "
        "RETURN <o>{$o/initial/text()}</o>"
    ),
    "nested_let_count": (
        'FOR $p IN document("auction.xml")//person '
        'LET $a := FOR $o IN document("auction.xml")//open_auction '
        "          WHERE $o/bidder//@person = $p/@id RETURN <t/> "
        "RETURN <row c={count($a)}>{$p/name/text()}</row>"
    ),
    "return_flwor": (
        'FOR $p IN document("auction.xml")//person '
        "RETURN <person name={$p/name/text()}>"
        '{FOR $o IN document("auction.xml")//open_auction '
        "WHERE $o/bidder//@person = $p/@id "
        "RETURN <won>{$o/quantity/text()}</won>}</person>"
    ),
    "bare_variable_return": (
        'FOR $q IN document("auction.xml")//quantity RETURN $q'
    ),
    "text_return": (
        'FOR $p IN document("auction.xml")//person '
        "RETURN $p/name/text()"
    ),
    "var_chain": (
        'FOR $o IN document("auction.xml")//open_auction '
        "FOR $b IN $o/bidder "
        "RETURN <i>{$b/increase/text()}</i>"
    ),
    "deep_descendant": (
        'FOR $r IN document("auction.xml")//open_auctions '
        "RETURN <total>{count($r//increase)}</total>"
    ),
}


@pytest.mark.parametrize("feature", sorted(FEATURES))
def test_feature_across_engines(tiny_engine, feature):
    query = FEATURES[feature]
    reference = canonical_sorted(tiny_engine.run(query, engine="tlc"))
    for engine in ("gtp", "tax", "nav"):
        assert reference == canonical_sorted(
            tiny_engine.run(query, engine=engine)
        ), f"{engine} diverged on feature {feature}"


@pytest.mark.parametrize("feature", sorted(FEATURES))
def test_feature_rewrite_stable(tiny_engine, feature):
    query = FEATURES[feature]
    plain = canonical_sorted(tiny_engine.run(query, engine="tlc"))
    optimized = canonical_sorted(
        tiny_engine.run(query, engine="tlc", optimize=True)
    )
    assert plain == optimized, feature
