"""Property test: the four engines agree on randomly generated data.

Hypothesis generates small random auction documents (random bidder
fan-outs, optional elements, random content values); a fixed set of
queries covering each WHERE/RETURN feature must produce content-identical
results under TLC, TAX, GTP and navigation.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine
from tests.conftest import canonical_sorted

QUERIES = [
    # simple predicate + text return
    'FOR $p IN document("a.xml")//person '
    "WHERE $p/age > 30 RETURN <o>{$p/name/text()}</o>",
    # aggregate predicate + nested return
    'FOR $o IN document("a.xml")//auction '
    "WHERE count($o/bid) > 1 RETURN <h>{$o/bid}</h>",
    # value join
    'FOR $p IN document("a.xml")//person '
    'FOR $o IN document("a.xml")//auction '
    "WHERE $p/@id = $o/bid/@by RETURN <j>{$p/name/text()}</j>",
    # quantifier
    'FOR $o IN document("a.xml")//auction '
    "WHERE EVERY $i IN $o/bid SATISFIES $i > 10 "
    "RETURN <q>{count($o/bid)}</q>",
    # correlated LET + count
    'FOR $p IN document("a.xml")//person '
    'LET $a := FOR $o IN document("a.xml")//auction '
    "          WHERE $o/bid/@by = $p/@id RETURN <t/> "
    "RETURN <n c={count($a)}>{$p/name/text()}</n>",
]


@st.composite
def auction_documents(draw):
    n_persons = draw(st.integers(1, 5))
    n_auctions = draw(st.integers(0, 5))
    persons = []
    for number in range(n_persons):
        age = draw(st.one_of(st.none(), st.integers(18, 60)))
        age_xml = f"<age>{age}</age>" if age is not None else ""
        persons.append(
            f'<person id="p{number}"><name>n{number}</name>{age_xml}'
            "</person>"
        )
    auctions = []
    for number in range(n_auctions):
        n_bids = draw(st.integers(0, 4))
        bids = "".join(
            f'<bid by="p{draw(st.integers(0, n_persons - 1))}">'
            f"{draw(st.integers(1, 40))}</bid>"
            for _ in range(n_bids)
        )
        auctions.append(f'<auction id="a{number}">{bids}</auction>')
    return (
        "<site><people>"
        + "".join(persons)
        + "</people><auctions>"
        + "".join(auctions)
        + "</auctions></site>"
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(auction_documents())
def test_engines_agree_on_random_documents(xml):
    engine = Engine()
    engine.load_xml("a.xml", xml)
    for query in QUERIES:
        reference = canonical_sorted(engine.run(query, engine="tlc"))
        for name in ("gtp", "tax", "nav"):
            assert reference == canonical_sorted(
                engine.run(query, engine=name)
            ), f"{name} diverged on: {query}\n{xml}"


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(auction_documents())
def test_rewrites_preserve_results_on_random_documents(xml):
    engine = Engine()
    engine.load_xml("a.xml", xml)
    query = (
        'FOR $p IN document("a.xml")//person '
        'FOR $o IN document("a.xml")//auction '
        "WHERE count($o/bid) > 1 AND $p/@id = $o/bid/@by "
        "RETURN <r name={$p/name/text()}> $o/bid </r>"
    )
    plain = canonical_sorted(engine.run(query, engine="tlc"))
    optimized = canonical_sorted(
        engine.run(query, engine="tlc", optimize=True)
    )
    assert plain == optimized
