"""Integration: the Section 4 rewrites preserve results on every query."""

import pytest

from repro.xmark import FIGURE15_ORDER, FIGURE16_QUERIES, QUERIES
from repro.rewrites import optimize
from repro.xquery import translate_query
from tests.conftest import canonical_sorted


@pytest.mark.parametrize("name", FIGURE15_ORDER)
def test_optimized_plan_is_equivalent(xmark_engine, name):
    query = QUERIES[name].text
    plain = xmark_engine.run(query, engine="tlc")
    optimized = xmark_engine.run(query, engine="tlc", optimize=True)
    assert canonical_sorted(plain) == canonical_sorted(optimized), name


@pytest.mark.parametrize("name", FIGURE16_QUERIES)
def test_rewrites_fire_on_figure16_queries(name):
    """The paper applies the rewrites to x3, x5, Q1, Q2."""
    plan, log = optimize(translate_query(QUERIES[name].text).plan)
    assert log.changed, f"no rewrite fired on {name}"
    assert log.flattened or log.shadowed


@pytest.mark.parametrize("name", FIGURE16_QUERIES)
def test_rewrites_reduce_data_access(xmark_engine, name):
    """OPT plans touch no more stored nodes than plain plans."""
    query = QUERIES[name].text
    xmark_engine.db.reset_metrics()
    xmark_engine.run(query, engine="tlc")
    plain_touches = xmark_engine.db.metrics.nodes_touched
    xmark_engine.db.reset_metrics()
    xmark_engine.run(query, engine="tlc", optimize=True)
    opt_touches = xmark_engine.db.metrics.nodes_touched
    assert opt_touches <= plain_touches, name
