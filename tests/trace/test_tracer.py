"""Unit tests for the runtime operator tracer."""

import pytest

from repro import Engine, ReproError
from repro.core.base import Context, Operator
from repro.core.evaluator import evaluate
from repro.model.sequence import TreeSequence
from repro.storage.database import Database
from repro.trace import Tracer, render_trace, trace_to_dot

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)


class _Leaf(Operator):
    """Test-only source operator producing a fixed-size sequence."""

    name = "Leaf"

    def __init__(self, size: int = 1) -> None:
        super().__init__()
        self.size = size
        self.executions = 0

    def execute(self, ctx, inputs):
        self.executions += 1
        return TreeSequence()


class _Pass(Operator):
    """Test-only pass-through operator."""

    name = "Pass"

    def execute(self, ctx, inputs):
        return inputs[0]


def _traced(plan):
    ctx = Context(Database())
    tracer = Tracer(ctx.metrics)
    evaluate(plan, ctx, tracer)
    return tracer.finish(plan)


class TestEngineTrace:
    def test_trace_attached_to_result(self, tiny_engine):
        result = tiny_engine.run(QUERY, trace=True)
        assert result.trace is not None
        assert result.trace.root.output_card == len(result)

    def test_no_trace_by_default(self, tiny_engine):
        result = tiny_engine.run(QUERY)
        assert result.trace is None

    def test_measure_attaches_trace(self, tiny_engine):
        report = tiny_engine.measure(QUERY, trace=True)
        assert report.trace is not None
        assert report.trace.root.output_card == report.result_trees

    def test_measure_without_trace(self, tiny_engine):
        assert tiny_engine.measure(QUERY).trace is None

    def test_self_times_sum_below_wall_time(self, tiny_engine):
        report = tiny_engine.measure(QUERY, trace=True)
        assert 0 < report.trace.total_self_seconds() <= report.seconds

    def test_counter_deltas_sum_to_query_totals(self, tiny_engine):
        report = tiny_engine.measure(QUERY, trace=True)
        totals = {k: v for k, v in report.counters.items() if v}
        assert report.trace.counters_total() == totals

    def test_input_cards_match_child_outputs(self, tiny_engine):
        trace = tiny_engine.run(QUERY, trace=True).trace
        for record in trace.records:
            assert record.input_cards == [
                trace.records[child].output_card
                for child in record.children
            ]

    def test_all_algebraic_engines_traced(self, tiny_engine):
        for name in ("tlc", "tax", "gtp"):
            trace = tiny_engine.run(QUERY, engine=name, trace=True).trace
            assert trace is not None
            assert len(trace.records) >= 2

    def test_nav_rejects_trace(self, tiny_engine):
        with pytest.raises(ReproError):
            tiny_engine.run(QUERY, engine="nav", trace=True)

    def test_trace_composes_with_strict(self, tiny_engine):
        result = tiny_engine.run(QUERY, strict=True, trace=True)
        assert result.trace is not None

    def test_trace_with_optimized_plan(self, tiny_engine):
        trace = tiny_engine.run(QUERY, optimize=True, trace=True).trace
        assert trace.root.output_card == 2


class TestSharedSubPlans:
    def test_memoised_sub_plan_reported_once(self):
        leaf = _Leaf()
        plan = _Pass([_Pass([leaf]), _Pass([leaf])])
        trace = _traced(plan)
        assert leaf.executions == 1
        leaf_records = [r for r in trace.records if r.name == "Leaf"]
        assert len(leaf_records) == 1
        assert leaf_records[0].memo_hits == 1

    def test_duplicate_input_edges_count_hits(self):
        leaf = _Leaf()
        plan = _Pass([leaf, leaf])
        trace = _traced(plan)
        assert leaf.executions == 1
        assert trace.record_for(leaf).memo_hits == 1

    def test_cumulative_counts_distinct_children_once(self):
        leaf = _Leaf()
        plan = _Pass([leaf, leaf])
        trace = _traced(plan)
        root = trace.root
        expected = root.self_seconds + trace.record_for(leaf).self_seconds
        assert root.cumulative_seconds == pytest.approx(expected)

    def test_render_marks_shared_stub(self):
        leaf = _Leaf()
        plan = _Pass([_Pass([leaf]), _Pass([leaf])])
        text = render_trace(_traced(plan))
        assert text.count("(shared)") == 1
        assert "shared x2" in text


class TestRendering:
    def test_render_annotates_every_operator(self, tiny_engine):
        trace = tiny_engine.run(QUERY, trace=True).trace
        text = trace.render()
        assert "Construct" in text and "Select" in text
        assert "self " in text and "cum " in text
        assert text.splitlines()[-1].startswith("-- total")

    def test_render_without_counters(self, tiny_engine):
        trace = tiny_engine.run(QUERY, trace=True).trace
        text = render_trace(trace, show_counters=False)
        assert "pattern_matches=" not in text

    def test_dot_rendering(self, tiny_engine):
        trace = tiny_engine.run(QUERY, trace=True).trace
        dot = trace_to_dot(trace)
        assert dot.startswith("digraph plan {")
        assert "self " in dot and "out " in dot
