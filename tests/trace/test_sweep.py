"""Trace invariants over the full benchmark corpus.

Every one of the 23 benchmark queries is traced under TLC (and, for the
rewrite-applicable subset, under the rewritten plan): the per-operator
self times must decompose the query's wall time, the counter deltas must
sum to the whole-query totals, and the record graph must be a well-formed
post-order DAG with each memoised sub-plan reported exactly once.
"""

import pytest

from repro.xmark.queries import FIGURE16_QUERIES, QUERIES


def _check_invariants(report):
    trace = report.trace
    assert trace is not None and trace.records
    # post-order: every child is recorded before its parent
    for record in trace.records:
        assert all(child < record.index for child in record.children)
        assert record.self_seconds >= 0
        assert record.cumulative_seconds >= record.self_seconds
        assert record.input_cards == [
            trace.records[child].output_card for child in record.children
        ]
    # the root's output is the query result
    assert trace.root.output_card == report.result_trees
    # self times are disjoint slices of the wall time
    assert trace.total_self_seconds() <= report.seconds
    # work counters decompose exactly: everything the query did happened
    # inside some operator's execute()
    totals = {k: v for k, v in report.counters.items() if v}
    assert trace.counters_total() == totals
    # rendering never fails and annotates every first occurrence
    text = trace.render()
    assert text.splitlines()[-1].startswith("-- total")
    assert text.count("# self ") == len(trace.records)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_trace_invariants_all_queries(xmark_engine, name):
    report = xmark_engine.measure(
        QUERIES[name].text, engine="tlc", label=name, trace=True
    )
    _check_invariants(report)


@pytest.mark.parametrize("name", sorted(FIGURE16_QUERIES))
def test_trace_invariants_rewritten_plans(xmark_engine, name):
    report = xmark_engine.measure(
        QUERIES[name].text,
        engine="tlc",
        optimize=True,
        label=name,
        trace=True,
    )
    _check_invariants(report)
