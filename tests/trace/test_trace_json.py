"""trace_to_json / render_trace_json: the offline EXPLAIN ANALYZE view."""

import json

from repro.trace import render_trace, render_trace_json, trace_to_json

QUERY = (
    'FOR $p IN document("auction.xml")//person '
    "WHERE $p//age > 25 RETURN <o>{$p/name/text()}</o>"
)


def _trace(engine):
    return engine.run(QUERY, trace=True).trace


class TestTraceToJson:
    def test_payload_is_json_serialisable(self, tiny_engine):
        payload = trace_to_json(_trace(tiny_engine))
        json.loads(json.dumps(payload))

    def test_schema_fields(self, tiny_engine):
        trace = _trace(tiny_engine)
        payload = trace_to_json(trace)
        assert payload["version"] == 1
        assert payload["operators"] == len(trace.records)
        assert payload["root"] == trace.root.index
        assert payload["total_seconds"] == trace.total_seconds
        assert payload["counters_total"] == trace.counters_total()
        record = payload["records"][0]
        for key in (
            "index",
            "name",
            "params",
            "input_cards",
            "output_card",
            "self_seconds",
            "cumulative_seconds",
            "counters",
            "memo_hits",
            "children",
        ):
            assert key in record

    def test_children_are_record_indexes(self, tiny_engine):
        payload = trace_to_json(_trace(tiny_engine))
        count = payload["operators"]
        for record in payload["records"]:
            for child in record["children"]:
                assert 0 <= child < count

    def test_render_round_trip_matches_live_render(self, tiny_engine):
        """The offline renderer and the live one can never drift."""
        trace = _trace(tiny_engine)
        payload = json.loads(json.dumps(trace_to_json(trace)))
        assert render_trace_json(payload) == render_trace(trace)

    def test_render_survives_missing_memo_hits(self, tiny_engine):
        """Older payloads without memo_hits still render."""
        payload = trace_to_json(_trace(tiny_engine))
        for record in payload["records"]:
            record.pop("memo_hits")
        assert "-- total" in render_trace_json(payload)
