"""The cost model against hand-computed cardinalities.

Every number asserted here is worked out by hand from the documented
cascade (``docs/PLANNING.md``): for a node with candidates ``C``,
``cost = raw`` (the scan), then per edge ``cost += variants +
child_variants; variants *= fanout; cost += variants``.  The statistics
are synthetic, so the arithmetic stays exact.
"""

import pytest

from repro.analysis.cardinality import Interval
from repro.patterns.apt import pattern_node
from repro.planner import (
    MAX_EXHAUSTIVE_EDGES,
    PREDICATE_SELECTIVITY,
    UNKNOWN_COUNT,
    CostModel,
)
from repro.storage.stats import CardinalityStats

#: tag "a" has 10 nodes, "b" 20, "c" 5 — chosen so the two edges of the
#: reference pattern have fanouts 2.0 and 0.5 under ``-``.
STATS = CardinalityStats(
    tag_counts={"d": {"a": 10, "b": 20, "c": 5}},
    totals={"d": 35},
)


def _reference_pattern():
    """``a`` with two ``-`` edges: ``/b`` (fanout 2) then ``/c`` (0.5)."""
    root = pattern_node("a", 1)
    root.add_edge(pattern_node("b", 2))
    root.add_edge(pattern_node("c", 3))
    return root


def test_estimate_pattern_reads_the_statistics():
    model = CostModel(STATS)
    estimate = model.estimate_pattern(_reference_pattern(), "d")
    assert estimate.raw_count == 10.0
    assert estimate.candidates == 10.0  # no predicates
    assert [e.child_variants for e in estimate.edges] == [20.0, 5.0]
    assert [e.fanout for e in estimate.edges] == [2.0, 0.5]
    # each leaf child costs exactly its own index scan
    assert [e.child_cost for e in estimate.edges] == [20.0, 5.0]
    assert estimate.subtree_cost() == 25.0
    # the variant product is order-independent: 10 * 2 * 0.5
    assert estimate.variants == 10.0


def test_order_cost_matches_the_hand_computed_cascade():
    model = CostModel(STATS)
    estimate = model.estimate_pattern(_reference_pattern(), "d")
    # b first: 10 scan; +10+20 merge, *2 -> 20, +20 write;
    #          +20+5 merge, *0.5 -> 10, +10 write  == 95
    assert model.order_cost(estimate, [0, 1]) == pytest.approx(95.0)
    # c first: 10 scan; +10+5 merge, *0.5 -> 5, +5 write;
    #          +5+20 merge, *2 -> 10, +10 write    == 65
    assert model.order_cost(estimate, [1, 0]) == pytest.approx(65.0)


def test_best_order_runs_the_selective_edge_first():
    model = CostModel(STATS)
    estimate = model.estimate_pattern(_reference_pattern(), "d")
    order, cost = model.best_order(estimate)
    assert order == [1, 0]
    assert cost == pytest.approx(65.0)


def test_best_order_ties_break_toward_source_order():
    """Identical edges cost the same either way: no gratuitous reorder."""
    root = pattern_node("a", 1)
    root.add_edge(pattern_node("b", 2))
    root.add_edge(pattern_node("b", 3))
    model = CostModel(STATS)
    estimate = model.estimate_pattern(root, "d")
    order, _ = model.best_order(estimate)
    assert order == [0, 1]


def test_predicates_scale_candidates_by_selectivity():
    model = CostModel(STATS)
    one = pattern_node("a", 1, comparisons=((">", 25),))
    estimate = model.estimate_pattern(one, "d")
    assert estimate.candidates == pytest.approx(10 * PREDICATE_SELECTIVITY)
    assert estimate.raw_count == 10.0  # the scan still reads every node
    two = pattern_node("a", 1, comparisons=((">", 25), ("<", 99)))
    estimate = model.estimate_pattern(two, "d")
    assert estimate.candidates == pytest.approx(
        10 * PREDICATE_SELECTIVITY**2
    )


@pytest.mark.parametrize(
    ("mspec", "tag", "fanout"),
    [
        ("-", "b", 2.0),   # children per parent: 20/10
        ("?", "b", 3.0),   # spread + the absent alternative
        ("+", "b", 1.0),   # min(1, spread): matches cluster
        ("+", "c", 0.5),   # ...unless parents outnumber children
        ("*", "c", 1.0),   # every parent survives with one cluster
    ],
)
def test_mspec_shapes_the_fanout(mspec, tag, fanout):
    root = pattern_node("a", 1)
    root.add_edge(pattern_node(tag, 2), mspec=mspec)
    model = CostModel(STATS)
    estimate = model.estimate_pattern(root, "d")
    assert estimate.edges[0].fanout == pytest.approx(fanout)


def test_unknown_documents_and_wildcards_estimate_conservatively():
    model = CostModel(STATS)
    assert model.node_count("unloaded.xml", pattern_node("a", 1)) == (
        UNKNOWN_COUNT
    )
    # a wildcard node is bounded by the document's total node count
    assert model.node_count("d", pattern_node(None, 1)) == 35.0


def test_large_nodes_fall_back_to_the_greedy_fanout_sort():
    """Past MAX_EXHAUSTIVE_EDGES the order is fanout-ascending."""
    tags = {f"t{i}": (i + 1) * 10 for i in range(MAX_EXHAUSTIVE_EDGES + 1)}
    tags["a"] = 10
    stats = CardinalityStats(
        tag_counts={"d": tags}, totals={"d": sum(tags.values())}
    )
    root = pattern_node("a", 1)
    # attach children with *descending* fanout so greedy must reverse
    for i in reversed(range(MAX_EXHAUSTIVE_EDGES + 1)):
        root.add_edge(pattern_node(f"t{i}", i + 2))
    model = CostModel(stats)
    estimate = model.estimate_pattern(root, "d")
    order, _ = model.best_order(estimate)
    assert order == list(reversed(range(MAX_EXHAUSTIVE_EDGES + 1)))


def test_interval_rows_caps_unbounded_estimates():
    model = CostModel(STATS)
    assert model.interval_rows(Interval(2, 7)) == 7.0
    # unbounded: a small multiple of the database size, never below lo
    assert model.interval_rows(Interval(3, None)) == model.row_cap
    assert model.interval_rows(Interval(10**9, None)) == 10**9


def test_observed_cardinalities_override_static_bounds(tiny_engine):
    from repro.planner.cost import post_order

    translation = tiny_engine.plan(
        'FOR $p IN document("auction.xml")//person RETURN $p/name'
    )
    stats = tiny_engine.cardinality_stats()
    plan = translation.plan
    index = len(post_order(plan)) - 1  # the root operator's tracer index
    static_rows = CostModel(stats).plan_rows(plan)
    observed_rows = CostModel(stats, observed={index: 999}).plan_rows(plan)
    assert observed_rows[id(plan)] == 999.0
    assert static_rows[id(plan)] != 999.0
