"""The REPRO_PLANNER switch and its per-call/per-scope overrides."""

from repro.planner import planner_enabled, set_planner, use_planner
from repro.xmark import QUERIES


def test_set_planner_returns_the_previous_setting():
    before = planner_enabled()
    try:
        assert set_planner(True) == before
        assert planner_enabled()
        assert set_planner(False) is True
        assert not planner_enabled()
    finally:
        set_planner(before)


def test_use_planner_restores_on_exit_even_after_an_error():
    before = planner_enabled()
    try:
        with use_planner(True):
            assert planner_enabled()
        assert planner_enabled() == before
        try:
            with use_planner(True):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert planner_enabled() == before
    finally:
        set_planner(before)


def test_the_toggle_is_the_default_and_the_call_overrides_it(
    xmark_engine,
):
    query = QUERIES["x9"].text
    with use_planner(True):
        translation = xmark_engine.plan(query)
        assert getattr(translation.plan, "planner_decision", None)
        # per-call override beats the scope
        static = xmark_engine.plan(query, planner=False)
        assert getattr(static.plan, "planner_decision", None) is None
    with use_planner(False):
        translation = xmark_engine.plan(query)
        assert getattr(translation.plan, "planner_decision", None) is None
        planned = xmark_engine.plan(query, planner=True)
        assert planned.plan.planner_decision.reordered_sites == 1
