"""``plan_physical``: decisions, annotations, purity, counters.

The walkthrough query is x9 — the same one docs/PLANNING.md narrates —
whose person-side pattern node joins ``//itemref`` and ``//buyer`` in an
order the statistics say is backwards.
"""

import pytest

from repro.core.select import SelectOp
from repro.patterns.apt import APT, pattern_node
from repro.planner import (
    CHOICE_KINDS,
    PlanDecision,
    plan_physical,
    post_order,
)
from repro.planner.planner import currency_flow
from repro.storage.stats import CardinalityStats
from repro.xmark import QUERIES

X9 = QUERIES["x9"].text


def _decision(engine, query, **kwargs):
    translation = engine.plan(query)
    return translation.plan, plan_physical(
        translation.plan, engine.cardinality_stats(), **kwargs
    )


def test_every_choice_kind_appears_once_for_a_join_query(xmark_engine):
    _, decision = _decision(xmark_engine, X9)
    kinds = {choice.kind for choice in decision.choices}
    assert kinds == set(CHOICE_KINDS)
    # exactly one plan-level choice per plan-level kind
    assert len(decision.by_kind("currency")) == 1
    assert len(decision.by_kind("engine")) == 1
    assert decision.total_cost > 0


def test_x9_reorders_its_join_site_and_annotates_the_node(xmark_engine):
    plan, decision = _decision(xmark_engine, X9)
    assert decision.reordered_sites == 1
    annotated = [
        node
        for op in post_order(plan)
        if isinstance(op, SelectOp)
        for node in op.apt.root.walk()
        if getattr(node, "planner_order", None) is not None
    ]
    assert len(annotated) == 1
    source = list(range(len(annotated[0].edges)))
    assert annotated[0].planner_order != source
    # the chosen-vs-rejected record says why, with both costs
    (choice,) = [c for c in decision.by_kind("edge-order") if c.changed]
    assert choice.chosen.cost < choice.rejected[0].cost
    assert "selective edges first" in choice.reason


def test_apply_false_never_mutates_the_plan(xmark_engine):
    plan, decision = _decision(xmark_engine, X9, apply=False)
    assert decision.reordered_sites == 1  # the decision still reports it
    for op in post_order(plan):
        assert getattr(op, "exec_mode", None) is None
        if isinstance(op, SelectOp):
            for node in op.apt.root.walk():
                assert getattr(node, "planner_order", None) is None
    assert getattr(plan, "exec_currency", None) is None
    assert getattr(plan, "planner_decision", None) is None


def test_replanning_clears_a_stale_annotation():
    """Symmetric statistics: source order is minimal, annotation drops."""
    stats = CardinalityStats(
        tag_counts={"d": {"a": 10, "b": 10, "c": 10}}, totals={"d": 30}
    )
    root = pattern_node("a", 1)
    root.add_edge(pattern_node("b", 2))
    root.add_edge(pattern_node("c", 3))
    select = SelectOp(APT(root, doc="d"))
    root.planner_order = [1, 0]  # a stale annotation from another model
    decision = plan_physical(select, stats)
    assert decision.reordered_sites == 0
    assert root.planner_order is None
    (choice,) = decision.by_kind("edge-order")
    assert choice.chosen.label == "source order"
    assert not choice.changed


def test_decision_record_round_trips_through_json(xmark_engine):
    _, decision = _decision(xmark_engine, X9, apply=False)
    payload = decision.to_dict()
    assert payload["version"] == 1
    again = PlanDecision.from_dict(payload)
    assert again.to_dict() == payload
    assert again.summary() == decision.summary()


def test_engine_plan_bumps_the_planner_counters(xmark_engine):
    xmark_engine.db.reset_metrics()
    xmark_engine.plan(X9, planner=True)
    counters = xmark_engine.db.metrics.snapshot()
    assert counters["planner_plans"] == 1
    assert counters["planner_reorders"] == 1
    xmark_engine.db.reset_metrics()
    xmark_engine.plan(X9, planner=False)
    counters = xmark_engine.db.metrics.snapshot()
    assert counters["planner_plans"] == 0


def test_observed_boundary_blowup_vetoes_the_batch_runtime(xmark_engine):
    """A measured boundary explosion flips the currency to per-tree."""
    translation = xmark_engine.plan(QUERIES["Q1"].text)
    plan = translation.plan
    stats = xmark_engine.cardinality_stats()
    baseline = plan_physical(plan, stats, apply=False)
    assert baseline.currency == "batch"
    from repro.planner.cost import CostModel

    model = CostModel(stats)
    ops = post_order(plan)
    native, consumers, _, _ = currency_flow(ops, model.plan_rows(plan))
    boundary_ops = [
        i
        for i, op in enumerate(ops)
        if native[id(op)]
        and any(not native[id(c)] for c in consumers[id(op)])
    ]
    assert boundary_ops, "Q1 should cross a tree<->column boundary"
    observed = {i: 10**9 for i in boundary_ops}
    flipped = plan_physical(plan, stats, observed=observed, apply=False)
    assert flipped.currency == "tree"
    (choice,) = flipped.by_kind("currency")
    assert choice.chosen.label == "tree"
    assert choice.rejected[0].label == "batch"


def test_planned_output_stays_byte_identical_and_lints(xmark_engine):
    """The planner's annotations survive strict LC-flow linting."""
    static = xmark_engine.run(X9, engine="tlc", planner=False)
    planned = xmark_engine.run(X9, engine="tlc", planner=True, strict=True)
    assert [t.to_xml() for t in planned] == [t.to_xml() for t in static]


@pytest.mark.parametrize("name", ("x1", "x5", "x9", "Q1", "Q2"))
def test_planning_is_idempotent(xmark_engine, name):
    """Planning an already-planned plan decides the same shape."""
    translation = xmark_engine.plan(QUERIES[name].text)
    stats = xmark_engine.cardinality_stats()
    first = plan_physical(translation.plan, stats)
    second = plan_physical(translation.plan, stats)
    assert second.to_dict() == first.to_dict()
