"""Calibration tests: table round-trip, activation scoping, drift.

``repro calibrate`` measures the cost model's constants; these tests
pin the machinery around the measurement — persistence, the
``calibrated()`` indirection every planner costing goes through, the
registry drift check CI runs against the committed table, and the
byte-identity guarantee (a calibrated planner annotates, never changes
results).
"""

from pathlib import Path

import pytest

from repro import Engine
from repro.planner import (
    DEFAULT_CONSTANTS,
    CalibrationTable,
    active_calibration,
    calibrated,
    check_table,
    expected_operator_names,
    plan_physical,
    set_calibration,
    use_calibration,
)
from repro.planner.calibration import (
    BATCH_CONVERT_RANGE,
    BATCH_SAVING_RANGE,
    LEGACY_FACTOR_RANGE,
)
from tests.conftest import TINY_AUCTION

REPO_TABLE = Path(__file__).resolve().parents[2] / "CALIBRATION.json"

QUERY = (
    'FOR $o IN document("auction.xml")//open_auction, '
    '$p IN document("auction.xml")//person '
    "WHERE $o/bidder/personref/@person = $p/@id "
    "RETURN <w>{$p/name/text()}</w>"
)


def sample_table(**overrides):
    fields = dict(
        factor=0.01,
        repeats=2,
        cpu_count=4,
        queries=23,
        unit_us=0.1,
        legacy_join_factor=1.8,
        batch_saving_per_row=0.2,
        batch_convert_per_row=0.7,
        operators={
            name: {
                "self_seconds": 0.01,
                "rows": 100,
                "us_per_row": 0.5,
                "measured": True,
            }
            for name in expected_operator_names()
        },
    )
    fields.update(overrides)
    return CalibrationTable(**fields)


class TestTableRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        table = sample_table(note="unit test")
        path = tmp_path / "cal.json"
        table.save(str(path))
        loaded = CalibrationTable.load(str(path))
        assert loaded == table

    def test_from_dict_rejects_unknown_versions(self):
        with pytest.raises(ValueError):
            CalibrationTable.from_dict({"version": 2})
        with pytest.raises(ValueError):
            CalibrationTable.from_dict([])


class TestCheckTable:
    def test_well_formed_table_has_no_problems(self):
        assert check_table(sample_table()) == []

    def test_missing_operator_key_is_drift(self):
        table = sample_table()
        del table.operators["Join"]
        problems = check_table(table)
        assert any("Join" in p for p in problems)

    def test_unknown_operator_key_is_drift(self):
        table = sample_table()
        table.operators["Teleport"] = {
            "self_seconds": 0, "rows": 0,
            "us_per_row": 1.0, "measured": False,
        }
        problems = check_table(table)
        assert any("Teleport" in p for p in problems)

    def test_constants_outside_their_clamps_are_flagged(self):
        bad = sample_table(
            legacy_join_factor=LEGACY_FACTOR_RANGE[1] + 1,
            batch_saving_per_row=BATCH_SAVING_RANGE[1] + 1,
            batch_convert_per_row=BATCH_CONVERT_RANGE[1] + 1,
        )
        assert len(check_table(bad)) >= 3


class TestCommittedTable:
    """The repo-root CALIBRATION.json that ``repro calibrate`` wrote."""

    def test_table_exists_and_is_loadable(self):
        assert REPO_TABLE.exists(), (
            "CALIBRATION.json missing — run: python -m repro calibrate"
        )
        table = CalibrationTable.load(str(REPO_TABLE))
        assert table.version == 1
        assert table.queries > 0

    def test_operator_keys_match_the_registry(self):
        """The CI drift gate: adding a core operator without
        re-calibrating must fail here."""
        table = CalibrationTable.load(str(REPO_TABLE))
        assert check_table(table) == []
        assert set(table.operators) == set(expected_operator_names())


class TestActivation:
    def test_defaults_without_a_table(self):
        assert active_calibration() is None
        for name, value in DEFAULT_CONSTANTS.items():
            assert calibrated(name) == value

    def test_unknown_constant_is_a_loud_error(self):
        with pytest.raises(KeyError):
            calibrated("legacy_join_faktor")

    def test_use_calibration_scopes_the_override(self):
        table = sample_table()
        with use_calibration(table):
            assert active_calibration() is table
            assert calibrated("legacy_join_factor") == 1.8
            assert calibrated("batch_saving_per_row") == 0.2
            assert calibrated("batch_convert_per_row") == 0.7
        assert active_calibration() is None
        assert calibrated("legacy_join_factor") == DEFAULT_CONSTANTS[
            "legacy_join_factor"
        ]

    def test_set_calibration_returns_previous(self):
        table = sample_table()
        assert set_calibration(table) is None
        try:
            assert set_calibration(None) is table
        finally:
            set_calibration(None)

    def test_env_variable_loads_lazily(self, tmp_path, monkeypatch):
        import repro.planner.calibration as cal

        path = tmp_path / "cal.json"
        sample_table().save(str(path))
        monkeypatch.setenv(cal.CALIBRATION_ENV, str(path))
        monkeypatch.setattr(cal, "_env_checked", False)
        monkeypatch.setattr(cal, "_active", None)
        try:
            table = active_calibration()
            assert table is not None
            assert table.legacy_join_factor == 1.8
        finally:
            set_calibration(None)

    def test_broken_env_file_falls_back_to_defaults(
        self, tmp_path, monkeypatch
    ):
        import repro.planner.calibration as cal

        path = tmp_path / "broken.json"
        path.write_text("{not json")
        monkeypatch.setenv(cal.CALIBRATION_ENV, str(path))
        monkeypatch.setattr(cal, "_env_checked", False)
        monkeypatch.setattr(cal, "_active", None)
        try:
            assert active_calibration() is None
            assert (
                calibrated("legacy_join_factor")
                == DEFAULT_CONSTANTS["legacy_join_factor"]
            )
        finally:
            set_calibration(None)


class TestCalibratedPlanning:
    def test_results_stay_byte_identical_under_calibration(self):
        engine = Engine()
        engine.load_xml("auction.xml", TINY_AUCTION)
        baseline = [t.to_xml() for t in engine.run(QUERY, optimize=True)]
        # extreme-but-valid constants: whatever shape they pick, the
        # annotations must not change a single result byte
        table = sample_table(
            legacy_join_factor=LEGACY_FACTOR_RANGE[1],
            batch_saving_per_row=BATCH_SAVING_RANGE[1],
            batch_convert_per_row=BATCH_CONVERT_RANGE[0],
        )
        with use_calibration(table):
            translation = engine.plan(QUERY, "tlc", True, planner=True)
            from repro.core.base import Context
            from repro.core.evaluator import evaluate

            result = evaluate(
                translation.plan, Context(engine.db)
            )
        assert [t.to_xml() for t in result] == baseline

    def test_calibrated_constants_move_the_cost_report(self):
        engine = Engine()
        engine.load_xml("auction.xml", TINY_AUCTION)
        translation = engine.plan(QUERY, "tlc", False, planner=False)
        default_decision = plan_physical(
            translation.plan, engine.cardinality_stats(), apply=False
        )
        with use_calibration(sample_table(legacy_join_factor=9.0)):
            calibrated_decision = plan_physical(
                translation.plan, engine.cardinality_stats(), apply=False
            )

        def legacy_cost(decision):
            for choice in decision.choices:
                if choice.kind == "engine":
                    return choice.rejected[0].cost
            raise AssertionError("no engine choice recorded")

        assert legacy_cost(calibrated_decision) > legacy_cost(
            default_decision
        )
