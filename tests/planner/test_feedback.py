"""The telemetry feedback loop: traces in, cheaper shapes out."""

import pytest

from repro.planner import (
    FEEDBACK_CAPACITY,
    FeedbackStore,
    observed_from_trace,
    plan_physical,
    post_order,
    recost,
)
from repro.planner.planner import currency_flow
from repro.xmark import QUERIES


def test_observed_from_trace_reads_the_version_1_schema():
    payload = {
        "version": 1,
        "records": [
            {"index": 0, "output_card": 51, "name": "Select"},
            {"index": 1, "output_card": 7, "name": "Filter"},
        ],
    }
    assert observed_from_trace(payload) == {0: 51, 1: 7}


def test_observed_from_trace_refuses_unknown_versions():
    """Alignment is positional: guessing at a new schema would corrupt."""
    assert observed_from_trace({}) == {}
    assert observed_from_trace(None) == {}
    assert observed_from_trace({"version": 2, "records": []}) == {}


def test_feedback_store_is_a_bounded_lru():
    store = FeedbackStore(capacity=2)
    store.remember("a", {0: 1})
    store.remember("b", {0: 2})
    store.remember("a", {0: 3})  # refresh: "a" becomes most recent
    store.remember("c", {0: 4})  # evicts "b", the least recent
    assert store.overrides_for("b") is None
    assert store.overrides_for("a") == {0: 3}
    assert store.overrides_for("c") == {0: 4}
    assert len(store) == 2
    store.forget("a")
    assert store.overrides_for("a") is None
    assert len(store) == 1


def test_feedback_store_hands_out_copies():
    store = FeedbackStore()
    observed = {0: 10}
    store.remember("k", observed)
    observed[0] = 99  # caller mutates its own dict afterwards
    first = store.overrides_for("k")
    assert first == {0: 10}
    first[0] = 77  # ...and the handed-out copy is not shared either
    assert store.overrides_for("k") == {0: 10}
    assert store.capacity == FEEDBACK_CAPACITY


def test_feedback_store_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        FeedbackStore(capacity=0)


def test_recost_keeps_a_plan_the_planner_would_pick_again(xmark_engine):
    translation = xmark_engine.plan(QUERIES["x9"].text, planner=True)
    verdict = recost(
        translation.plan, xmark_engine.cardinality_stats(), {}
    )
    assert not verdict.changed
    assert verdict.reorder_flips == 0
    assert not verdict.currency_flip
    assert "what the planner would pick now" in verdict.reason


def test_recost_reports_a_differing_shape_without_flapping(xmark_engine):
    """An unplanned x9 differs (1 reorder) but not beyond the margin."""
    translation = xmark_engine.plan(QUERIES["x9"].text, planner=False)
    verdict = recost(
        translation.plan, xmark_engine.cardinality_stats(), {}
    )
    assert verdict.reorder_flips == 1
    assert not verdict.changed  # saving < RECOST_MARGIN: keep the plan
    assert "saves less than" in verdict.reason


def test_recost_evicts_when_observations_flip_the_currency(xmark_engine):
    """A measured boundary blowup makes the tree shape clearly cheaper."""
    stats = xmark_engine.cardinality_stats()
    translation = xmark_engine.plan(QUERIES["Q1"].text, planner=True)
    plan = translation.plan
    assert plan.exec_currency == "batch"
    from repro.planner.cost import CostModel

    ops = post_order(plan)
    native, consumers, _, _ = currency_flow(
        ops, CostModel(stats).plan_rows(plan)
    )
    observed = {
        i: 10**9
        for i, op in enumerate(ops)
        if native[id(op)]
        and any(not native[id(c)] for c in consumers[id(op)])
    }
    assert observed, "Q1 should cross a tree<->column boundary"
    verdict = recost(plan, stats, observed)
    assert verdict.currency_flip
    assert verdict.changed
    assert verdict.improvement > 0.10
    assert "currency batch->tree" in verdict.reason
    # recost is pure: the cached plan still carries its batch shape
    assert plan.exec_currency == "batch"
    assert verdict.decision.currency == "tree"


def test_uniform_misses_flip_nothing(xmark_engine):
    """Every estimate off by the same factor scales all shapes equally."""
    stats = xmark_engine.cardinality_stats()
    translation = xmark_engine.plan(QUERIES["x9"].text, planner=True)
    plan = translation.plan
    from repro.planner.cost import CostModel

    rows = CostModel(stats).plan_rows(plan)
    uniform = {
        i: int(rows[id(op)] * 3) + 1
        for i, op in enumerate(post_order(plan))
    }
    verdict = recost(plan, stats, uniform)
    assert not verdict.currency_flip
    assert not verdict.changed


def test_service_bumps_an_evicted_plan_and_counts_it(
    xmark_engine, monkeypatch
):
    """The service plumbing: slow capture -> recost -> LRU bump."""
    import repro.planner.feedback as feedback_mod

    real_recost = feedback_mod.recost

    def eager_recost(plan, stats, observed, margin=None):
        verdict = real_recost(plan, stats, observed, margin=0.0)
        verdict.changed = True  # force the bump regardless of margin
        return verdict

    monkeypatch.setattr(feedback_mod, "recost", eager_recost)
    query = QUERIES["x9"].text
    with xmark_engine.service(threads=1, slow_threshold=0.0,
                              planner=True) as svc:
        xmark_engine.db.reset_metrics()
        svc.execute(query)
        stats = svc.stats()
        assert stats.slow_queries >= 1
        assert stats.plan_bumps == 1
        assert stats.planner
        assert (
            xmark_engine.db.metrics.snapshot()["planner_evictions"] == 1
        )
        assert svc.feedback.overrides_for(svc.prepare(query).key)
        # the recompile after the bump plans with the parked overrides
        result = svc.execute(query)
        assert len(result) > 0


class TestFeedbackPersistence:
    """save()/load(): the JSON round-trip behind serve --feedback-file."""

    def _key(self, text):
        from repro.service.cache import PlanCacheKey

        return PlanCacheKey(text=text, engine="tlc", optimize=True)

    def test_round_trip_preserves_entries_and_order(self, tmp_path):
        store = FeedbackStore()
        store.remember(self._key("Q1"), {0: 10, 3: 250})
        store.remember(self._key("Q2"), {1: 7})
        path = tmp_path / "feedback.json"
        assert store.save(str(path)) == 2

        fresh = FeedbackStore()
        assert fresh.load(str(path)) == 2
        assert fresh.overrides_for(self._key("Q1")) == {0: 10, 3: 250}
        assert fresh.overrides_for(self._key("Q2")) == {1: 7}
        assert len(fresh) == 2

    def test_non_cache_keys_are_skipped_on_save(self, tmp_path):
        store = FeedbackStore()
        store.remember("ad-hoc test key", {0: 1})
        store.remember(self._key("Q1"), {0: 2})
        path = tmp_path / "feedback.json"
        assert store.save(str(path)) == 1
        fresh = FeedbackStore()
        assert fresh.load(str(path)) == 1
        assert fresh.overrides_for(self._key("Q1")) == {0: 2}

    def test_load_tolerates_missing_and_malformed_files(self, tmp_path):
        store = FeedbackStore()
        assert store.load(str(tmp_path / "nope.json")) == 0
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert store.load(str(broken)) == 0
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"version": 99, "entries": []}')
        assert store.load(str(wrong)) == 0
        assert len(store) == 0

    def test_service_round_trips_through_feedback_path(
        self, xmark_engine, tmp_path
    ):
        """serve --feedback-file: saved on close, loaded on start."""
        path = tmp_path / "feedback.json"
        key = self._key("Q_persist")
        with xmark_engine.service(threads=1, feedback_path=str(path)) as svc:
            svc.feedback.remember(key, {2: 99})
        assert path.exists()
        with xmark_engine.service(threads=1, feedback_path=str(path)) as svc:
            assert svc.feedback.overrides_for(key) == {2: 99}
