"""Property tests: the skip-aware joins equal the legacy per-parent joins.

The fast path (:func:`pair_join` and friends with ``_FAST_PATH`` on)
replaces an independent binary search per parent with one merge-style
cursor that skips monotonically across the sorted parents.  Same
contract, same output — these tests pin exact equality (pairs, nesting
*and* order) against the retained ``*_legacy`` implementations across
random documents, both axes, all four matching specifications, and the
precomputed-column entry points.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.physical.structural_join import (
    child_columns,
    join_for_mspec,
    join_for_mspec_legacy,
    nest_join,
    nest_join_legacy,
    pair_join,
    pair_join_legacy,
)
from repro.storage import Database
from repro.storage.stats import Metrics


@st.composite
def random_document(draw):
    """A random 2-tag tree as XML text (both tags on every level)."""

    def element(depth):
        tag = draw(st.sampled_from("pq"))
        if depth >= 4:
            return f"<{tag}/>"
        kids = "".join(
            element(depth + 1) for _ in range(draw(st.integers(0, 3)))
        )
        return f"<{tag}>{kids}</{tag}>"

    return f"<r>{element(0)}</r>"


def _sides(xml):
    db = Database()
    db.load_xml("t.xml", xml)
    return db.tag_lookup("t.xml", "p"), db.tag_lookup("t.xml", "q")


@given(
    random_document(),
    st.sampled_from(["pc", "ad"]),
    st.booleans(),
)
def test_pair_join_equals_legacy(xml, axis, outer):
    parents, children = _sides(xml)
    fast = pair_join(parents, children, axis, outer=outer)
    slow = pair_join_legacy(parents, children, axis, outer=outer)
    assert fast == slow  # identical pairs in identical order


@given(
    random_document(),
    st.sampled_from(["pc", "ad"]),
    st.booleans(),
)
def test_nest_join_equals_legacy(xml, axis, outer):
    parents, children = _sides(xml)
    fast = nest_join(parents, children, axis, outer=outer)
    slow = nest_join_legacy(parents, children, axis, outer=outer)
    assert fast == slow  # identical clusters in identical order


@given(
    random_document(),
    st.sampled_from(["pc", "ad"]),
    st.sampled_from(["-", "?", "+", "*"]),
)
def test_join_for_mspec_equals_legacy(xml, axis, mspec):
    parents, children = _sides(xml)
    fast = join_for_mspec(parents, children, axis, mspec)
    slow = join_for_mspec_legacy(parents, children, axis, mspec)
    assert fast == slow


@given(random_document(), st.sampled_from(["pc", "ad"]))
def test_precomputed_columns_change_nothing(xml, axis):
    """Passing the columnar probe arrays must not change the output."""
    parents, children = _sides(xml)
    plain = join_for_mspec(parents, children, axis, "-")
    starts, levels = child_columns(list(children), lambda n: n)
    columnar = join_for_mspec(
        parents,
        children,
        axis,
        "-",
        child_starts=starts,
        child_levels=levels,
    )
    assert plain == columnar


@given(random_document(), st.sampled_from(["pc", "ad"]))
def test_fast_path_never_scans_more(xml, axis):
    """The skip cursor's work counter never exceeds the legacy join's."""
    parents, children = _sides(xml)
    fast_metrics, slow_metrics = Metrics(), Metrics()
    pair_join(parents, children, axis, metrics=fast_metrics)
    pair_join_legacy(parents, children, axis, metrics=slow_metrics)
    assert fast_metrics.structural_joins <= slow_metrics.structural_joins
