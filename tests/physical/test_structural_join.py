"""Unit and property tests for the structural join primitives."""

from hypothesis import given
from hypothesis import strategies as st

from repro.model.node_id import NodeId
from repro.physical.structural_join import join_for_mspec, nest_join, pair_join
from repro.storage import Database
from repro.storage.stats import Metrics


def ids_of(db, doc, tag):
    return db.tag_lookup(doc, tag)


def build_db():
    db = Database()
    db.load_xml(
        "t.xml",
        """
        <r>
          <a><b/><b/><c><b/></c></a>
          <a><c/></a>
          <a/>
        </r>
        """,
    )
    return db


class TestPairJoin:
    def test_parent_child(self):
        db = build_db()
        pairs = pair_join(
            ids_of(db, "t.xml", "a"), ids_of(db, "t.xml", "b"), "pc"
        )
        assert len(pairs) == 2  # only the direct b children of the first a

    def test_ancestor_descendant(self):
        db = build_db()
        pairs = pair_join(
            ids_of(db, "t.xml", "a"), ids_of(db, "t.xml", "b"), "ad"
        )
        assert len(pairs) == 3

    def test_outer_keeps_unmatched(self):
        db = build_db()
        pairs = pair_join(
            ids_of(db, "t.xml", "a"),
            ids_of(db, "t.xml", "b"),
            "ad",
            outer=True,
        )
        unmatched = [p for p in pairs if p[1] is None]
        assert len(unmatched) == 2
        assert len(pairs) == 5

    def test_metrics(self):
        db = build_db()
        metrics = Metrics()
        pair_join(
            ids_of(db, "t.xml", "a"),
            ids_of(db, "t.xml", "b"),
            "pc",
            metrics=metrics,
        )
        assert metrics.structural_joins == 1


class TestNestJoin:
    def test_clusters_per_parent(self):
        db = build_db()
        nested = nest_join(
            ids_of(db, "t.xml", "a"), ids_of(db, "t.xml", "b"), "ad"
        )
        assert len(nested) == 1
        assert len(nested[0][1]) == 3

    def test_outer_keeps_empty_clusters(self):
        db = build_db()
        nested = nest_join(
            ids_of(db, "t.xml", "a"),
            ids_of(db, "t.xml", "b"),
            "ad",
            outer=True,
        )
        assert len(nested) == 3
        sizes = sorted(len(cluster) for _, cluster in nested)
        assert sizes == [0, 0, 3]

    def test_metrics_count_nest(self):
        db = build_db()
        metrics = Metrics()
        nest_join(
            ids_of(db, "t.xml", "a"),
            ids_of(db, "t.xml", "b"),
            "pc",
            metrics=metrics,
        )
        assert metrics.nest_joins == 1


class TestJoinForMspec:
    def test_all_four_shapes(self):
        db = build_db()
        parents = ids_of(db, "t.xml", "a")
        children = ids_of(db, "t.xml", "b")
        by_mspec = {
            m: join_for_mspec(parents, children, "ad", m)
            for m in "-?+*"
        }
        # '-': only the parent with matches, one alternative per child
        assert len(by_mspec["-"]) == 1
        assert len(by_mspec["-"][0][1]) == 3
        # '?': parents without matches get one empty alternative
        assert len(by_mspec["?"]) == 3
        # '+': one cluster alternative, match-less parents dropped
        assert len(by_mspec["+"]) == 1
        assert len(by_mspec["+"][0][1]) == 1
        assert len(by_mspec["+"][0][1][0]) == 3
        # '*': like '+' but empty clusters kept
        assert len(by_mspec["*"]) == 3


# ----------------------------------------------------------------------
# property: join output equals the naive quadratic algorithm
# ----------------------------------------------------------------------
@st.composite
def random_document(draw):
    """A random 2-tag tree as XML text."""

    def element(depth):
        tag = draw(st.sampled_from("pq"))
        if depth >= 4:
            return f"<{tag}/>"
        kids = "".join(
            element(depth + 1) for _ in range(draw(st.integers(0, 3)))
        )
        return f"<{tag}>{kids}</{tag}>"

    return f"<r>{element(0)}</r>"


@given(random_document(), st.sampled_from(["pc", "ad"]))
def test_pair_join_matches_naive(xml, axis):
    db = Database()
    db.load_xml("t.xml", xml)
    parents = db.tag_lookup("t.xml", "p")
    children = db.tag_lookup("t.xml", "q")
    fast = {
        (p.start, c.start) for p, c in pair_join(parents, children, axis)
    }
    if axis == "pc":
        naive = {
            (p.start, c.start)
            for p in parents
            for c in children
            if p.is_parent_of(c)
        }
    else:
        naive = {
            (p.start, c.start)
            for p in parents
            for c in children
            if p.contains(c)
        }
    assert fast == naive


@given(random_document())
def test_nest_join_partitions_pairs(xml):
    """Property: nest output is exactly the pair output grouped."""
    db = Database()
    db.load_xml("t.xml", xml)
    parents = db.tag_lookup("t.xml", "p")
    children = db.tag_lookup("t.xml", "q")
    pairs = pair_join(parents, children, "ad")
    nested = nest_join(parents, children, "ad")
    flattened = {
        (p.start, c.start) for p, cluster in nested for c in cluster
    }
    assert flattened == {(p.start, c.start) for p, c in pairs}
