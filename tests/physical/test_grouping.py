"""Unit tests for the baselines' group-by restructuring primitives."""

from repro.model.node_id import NodeId
from repro.model.sequence import TreeSequence
from repro.model.tree import TNode, XTree
from repro.physical.grouping import group_by_node, group_merge, split_by_class
from repro.storage.stats import Metrics


def flat_pair(auction_start: int, bidder_start: int, bid_value) -> XTree:
    """One flat witness tree: auction(1) with a single bidder(2)."""
    auction = TNode(
        "open_auction", None, NodeId(0, auction_start, auction_start + 90, 2),
        [1],
    )
    auction.add_child(
        TNode("bidder", bid_value, NodeId(0, bidder_start, bidder_start + 1, 3), [2])
    )
    return XTree(auction)


class TestGroupByNode:
    def test_groups_by_identity(self):
        trees = TreeSequence(
            [flat_pair(100, 101, "a"), flat_pair(100, 103, "b"),
             flat_pair(300, 301, "c")]
        )
        metrics = Metrics()
        grouped = group_by_node(trees, 1, 2, metrics)
        assert len(grouped) == 2
        sizes = [len(t.nodes_in_class(2)) for t in grouped]
        assert sizes == [2, 1]
        assert metrics.groupby_ops == 1

    def test_members_not_duplicated_from_host(self):
        """The host clone must not retain its own member copy (the x2
        triple-increase regression)."""
        trees = TreeSequence(
            [flat_pair(100, 101, "a"), flat_pair(100, 103, "b")]
        )
        grouped = group_by_node(trees, 1, 2)
        values = sorted(n.value for n in grouped[0].nodes_in_class(2))
        assert values == ["a", "b"]

    def test_deep_members_pruned_from_host(self):
        """Members nested below intermediate nodes are pruned too."""
        auction = TNode("open_auction", None, NodeId(0, 1, 90, 2), [1])
        wrapper = auction.add_child(TNode("wrap", None, NodeId(0, 2, 9, 3)))
        wrapper.add_child(TNode("inc", "x", NodeId(0, 3, 4, 4), [2]))
        trees = TreeSequence([XTree(auction)])
        grouped = group_by_node(trees, 1, 2)
        assert len(grouped[0].nodes_in_class(2)) == 1

    def test_trees_without_group_skipped(self):
        orphan = XTree(TNode("x", None, NodeId(0, 500, 501, 1)))
        grouped = group_by_node(TreeSequence([orphan]), 1, 2)
        assert len(grouped) == 0


class TestGroupMerge:
    def test_merge_attaches_branch_content(self):
        main = TreeSequence([flat_pair(100, 101, "main")])
        branch_host = TNode(
            "open_auction", None, NodeId(0, 100, 190, 2), [7]
        )
        branch_host.add_child(
            TNode("count", 5, NodeId(0, 150, 151, 3), [8])
        )
        branch = TreeSequence([XTree(branch_host)])
        merged = group_merge(main, [branch], 1, [7])
        assert len(merged) == 1
        assert merged[0].nodes_in_class(8)[0].value == 5

    def test_unmatched_main_passes_through(self):
        main = TreeSequence([flat_pair(100, 101, "x")])
        branch = TreeSequence([])
        merged = group_merge(main, [branch], 1, [7])
        assert len(merged) == 1
        assert merged[0].nodes_in_class(8) == []


class TestSplitByClass:
    def test_prunes_rejected_children(self):
        tree = flat_pair(100, 101, "a")
        out = split_by_class(
            TreeSequence([tree]), keep=lambda n: 2 not in n.lcls
        )
        assert out[0].nodes_in_class(2) == []
        assert len(out[0].nodes_in_class(1)) == 1
