"""Unit tests for the navigation primitives."""

from repro.physical.navigation import (
    child_step,
    descendant_step,
    navigate_path,
)
from repro.storage import Database

XML = """
<site>
  <people>
    <person><name>Alice</name></person>
    <person><name>Bob</name></person>
  </people>
  <auctions>
    <auction><bidder><name>deep</name></bidder></auction>
  </auctions>
</site>
"""


def build():
    db = Database()
    doc = db.load_xml("t.xml", XML)
    return db, doc


class TestSteps:
    def test_child_step_filters_by_tag(self):
        db, doc = build()
        site = db.children(doc.root_id)[0]
        assert len(child_step(db, site, "people")) == 1
        assert len(child_step(db, site, "nothing")) == 0

    def test_child_step_no_tag_returns_all(self):
        db, doc = build()
        site = db.children(doc.root_id)[0]
        assert len(child_step(db, site)) == 2

    def test_descendant_step(self):
        db, doc = build()
        names = descendant_step(db, doc.root_id, "name")
        assert len(names) == 3

    def test_descendant_order(self):
        db, doc = build()
        names = descendant_step(db, doc.root_id, "name")
        starts = [n.start for n in names]
        assert starts == sorted(starts)

    def test_navigation_is_metered(self):
        db, doc = build()
        db.reset_metrics()
        descendant_step(db, doc.root_id, "name")
        # one step per node whose children were fetched
        assert db.metrics.navigation_steps > 5

    def test_navigate_path(self):
        db, doc = build()
        people_names = navigate_path(
            db, doc.root_id, [("ad", "person"), ("pc", "name")]
        )
        assert len(people_names) == 2

    def test_navigate_path_dedupes(self):
        db, doc = build()
        # // then // can reach a node twice; must not duplicate
        names = navigate_path(
            db, doc.root_id, [("ad", "site"), ("ad", "name")]
        )
        assert len(names) == 3
