"""Unit and property tests for the value-join primitives."""

from hypothesis import given
from hypothesis import strategies as st

from repro.model.value import compare, sort_key
from repro.physical.value_join import merge_equi_join, nest_merge, theta_join
from repro.storage.stats import Metrics


class TestMergeEquiJoin:
    def test_basic_equality(self):
        left = [("a", 1), ("b", 2)]
        right = [("b", 10), ("c", 11), ("b", 12)]
        pairs = merge_equi_join(
            left, right, lambda x: x[0], lambda x: x[0]
        )
        assert sorted(p[1][1] for p in pairs) == [10, 12]

    def test_duplicates_cross_product(self):
        left = [("k", i) for i in range(3)]
        right = [("k", i) for i in range(4)]
        pairs = merge_equi_join(
            left, right, lambda x: x[0], lambda x: x[0]
        )
        assert len(pairs) == 12

    def test_numeric_string_coercion(self):
        left = [("07", "l")]
        right = [("7.0", "r")]
        pairs = merge_equi_join(
            left, right, lambda x: x[0], lambda x: x[0]
        )
        assert len(pairs) == 1

    def test_empty_inputs(self):
        assert merge_equi_join([], [("a", 1)], lambda x: x[0],
                               lambda x: x[0]) == []

    def test_metrics_count_sorts(self):
        metrics = Metrics()
        merge_equi_join(
            [("a", 1)], [("a", 2)], lambda x: x[0], lambda x: x[0],
            metrics=metrics,
        )
        assert metrics.value_joins == 1
        assert metrics.sort_ops == 2


class TestMixedKeyJoin:
    """Numeric and string keys in one input: the ``sort_key`` contract.

    ``merge_equi_join`` sorts both sides by
    :func:`repro.model.value.sort_key`, whose total order is
    ``None < numbers < strings``; mixed inputs must neither raise (the
    Python 3 ``float < str`` TypeError) nor match across categories.
    """

    def _join(self, left_vals, right_vals):
        return merge_equi_join(
            list(enumerate(left_vals)),
            list(enumerate(right_vals)),
            lambda x: x[1],
            lambda x: x[1],
        )

    def test_mixed_inputs_do_not_raise(self):
        pairs = self._join(
            ["10", "apple", 7, "7"], ["banana", "10", 7.0, "apple"]
        )
        matches = {(l[1], r[1]) for l, r in pairs}
        assert matches == {
            ("10", "10"), ("apple", "apple"), (7, 7.0), ("7", 7.0),
        }

    def test_no_cross_category_matches(self):
        # the string "apple" never equals any number, and numeric
        # strings only match numerically-equal keys
        assert self._join(["apple"], [7]) == []
        assert self._join(["10"], ["10.5"]) == []

    def test_numeric_strings_collapse(self):
        pairs = self._join(["07"], [7, "7.0", " 7 "])
        assert len(pairs) == 3

    def test_agrees_with_compare_on_mixed_inputs(self):
        left = ["9", "10", "apple", 3.5, "3.50"]
        right = ["apple", "applet", 9, "10.0", "3.5"]
        fast = sorted(
            (l[0], r[0]) for l, r in self._join(left, right)
        )
        naive = sorted(
            (i, j)
            for i, lv in enumerate(left)
            for j, rv in enumerate(right)
            if compare(lv, "=", rv)
        )
        assert fast == naive

    def test_sort_key_total_order(self):
        # None < numbers < strings; within numbers numeric order, within
        # strings lexicographic — sorting mixed content never raises
        values = ["b", 2, None, "10", "a", 1.5, None, "09"]
        ordered = sorted(values, key=sort_key)
        assert ordered[:2] == [None, None]
        assert ordered[2:5] == [1.5, 2, "09"] or ordered[2:5] == [1.5, 2, "10"]
        assert sort_key("09") == sort_key(9)
        assert sort_key(None) < sort_key(-1e9) < sort_key("")

    def test_sort_key_is_deterministic_under_shuffle(self):
        # ties (1 vs "1") keep input order under the stable sort, so the
        # deterministic object is the key sequence, not the value list
        values = ["x", 1, "02", None, 2.0, "y", "1"]
        baseline = [sort_key(v) for v in sorted(values, key=sort_key)]
        shuffled = [
            sort_key(v) for v in sorted(reversed(values), key=sort_key)
        ]
        assert shuffled == baseline


class TestThetaJoin:
    def test_inequality(self):
        left = [(5, "l5"), (10, "l10")]
        right = [(7, "r7"), (20, "r20")]
        pairs = theta_join(
            left, right, ">", lambda x: x[0], lambda x: x[0]
        )
        assert {(l[0], r[0]) for l, r in pairs} == {(10, 7)}

    def test_equality_uses_merge(self):
        metrics = Metrics()
        theta_join(
            [(1, "a")], [(1, "b")], "=",
            lambda x: x[0], lambda x: x[0], metrics=metrics,
        )
        assert metrics.sort_ops == 2  # sort-merge path taken

    def test_none_values_never_match(self):
        pairs = theta_join(
            [(None, "l")], [(None, "r")], ">",
            lambda x: x[0], lambda x: x[0],
        )
        assert pairs == []


class TestNestMerge:
    def test_clusters_preserve_left_order(self):
        l1, l2, l3 = "l1", "l2", "l3"
        pairs = [(l2, "a"), (l1, "b"), (l2, "c")]
        clusters = nest_merge(pairs, [l1, l2, l3])
        assert clusters == [(l1, ["b"]), (l2, ["a", "c"])]

    def test_outer_includes_unmatched(self):
        clusters = nest_merge([], ["x"], outer=True)
        assert clusters == [("x", [])]

    def test_inner_drops_unmatched(self):
        clusters = nest_merge([], ["x"], outer=False)
        assert clusters == []


# ----------------------------------------------------------------------
# property: theta join == naive nested loop, for every operator
# ----------------------------------------------------------------------
_values = st.one_of(
    st.integers(-5, 5).map(str),
    st.sampled_from(["a", "b", "gold"]),
)


@given(
    st.lists(_values, max_size=8),
    st.lists(_values, max_size=8),
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
)
def test_theta_join_matches_naive(left_vals, right_vals, op):
    left = list(enumerate(left_vals))
    right = list(enumerate(right_vals))
    pairs = theta_join(
        left, right, op, lambda x: x[1], lambda x: x[1]
    )
    fast = sorted((l[0], r[0]) for l, r in pairs)
    naive = sorted(
        (l[0], r[0])
        for l in left
        for r in right
        if compare(l[1], op, r[1])
    )
    assert fast == naive
