"""Unit and property tests for the value-join primitives."""

from hypothesis import given
from hypothesis import strategies as st

from repro.model.value import compare
from repro.physical.value_join import merge_equi_join, nest_merge, theta_join
from repro.storage.stats import Metrics


class TestMergeEquiJoin:
    def test_basic_equality(self):
        left = [("a", 1), ("b", 2)]
        right = [("b", 10), ("c", 11), ("b", 12)]
        pairs = merge_equi_join(
            left, right, lambda x: x[0], lambda x: x[0]
        )
        assert sorted(p[1][1] for p in pairs) == [10, 12]

    def test_duplicates_cross_product(self):
        left = [("k", i) for i in range(3)]
        right = [("k", i) for i in range(4)]
        pairs = merge_equi_join(
            left, right, lambda x: x[0], lambda x: x[0]
        )
        assert len(pairs) == 12

    def test_numeric_string_coercion(self):
        left = [("07", "l")]
        right = [("7.0", "r")]
        pairs = merge_equi_join(
            left, right, lambda x: x[0], lambda x: x[0]
        )
        assert len(pairs) == 1

    def test_empty_inputs(self):
        assert merge_equi_join([], [("a", 1)], lambda x: x[0],
                               lambda x: x[0]) == []

    def test_metrics_count_sorts(self):
        metrics = Metrics()
        merge_equi_join(
            [("a", 1)], [("a", 2)], lambda x: x[0], lambda x: x[0],
            metrics=metrics,
        )
        assert metrics.value_joins == 1
        assert metrics.sort_ops == 2


class TestThetaJoin:
    def test_inequality(self):
        left = [(5, "l5"), (10, "l10")]
        right = [(7, "r7"), (20, "r20")]
        pairs = theta_join(
            left, right, ">", lambda x: x[0], lambda x: x[0]
        )
        assert {(l[0], r[0]) for l, r in pairs} == {(10, 7)}

    def test_equality_uses_merge(self):
        metrics = Metrics()
        theta_join(
            [(1, "a")], [(1, "b")], "=",
            lambda x: x[0], lambda x: x[0], metrics=metrics,
        )
        assert metrics.sort_ops == 2  # sort-merge path taken

    def test_none_values_never_match(self):
        pairs = theta_join(
            [(None, "l")], [(None, "r")], ">",
            lambda x: x[0], lambda x: x[0],
        )
        assert pairs == []


class TestNestMerge:
    def test_clusters_preserve_left_order(self):
        l1, l2, l3 = "l1", "l2", "l3"
        pairs = [(l2, "a"), (l1, "b"), (l2, "c")]
        clusters = nest_merge(pairs, [l1, l2, l3])
        assert clusters == [(l1, ["b"]), (l2, ["a", "c"])]

    def test_outer_includes_unmatched(self):
        clusters = nest_merge([], ["x"], outer=True)
        assert clusters == [("x", [])]

    def test_inner_drops_unmatched(self):
        clusters = nest_merge([], ["x"], outer=False)
        assert clusters == []


# ----------------------------------------------------------------------
# property: theta join == naive nested loop, for every operator
# ----------------------------------------------------------------------
_values = st.one_of(
    st.integers(-5, 5).map(str),
    st.sampled_from(["a", "b", "gold"]),
)


@given(
    st.lists(_values, max_size=8),
    st.lists(_values, max_size=8),
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
)
def test_theta_join_matches_naive(left_vals, right_vals, op):
    left = list(enumerate(left_vals))
    right = list(enumerate(right_vals))
    pairs = theta_join(
        left, right, op, lambda x: x[1], lambda x: x[1]
    )
    fast = sorted((l[0], r[0]) for l, r in pairs)
    naive = sorted(
        (l[0], r[0])
        for l in left
        for r in right
        if compare(l[1], op, r[1])
    )
    assert fast == naive
