"""Unit and property tests for the stack-based structural join."""

from hypothesis import given
from hypothesis import strategies as st

from repro.physical.stack_join import stack_tree_desc
from repro.physical.structural_join import pair_join
from repro.storage import Database
from repro.storage.stats import Metrics


def build_db(xml: str) -> Database:
    db = Database()
    db.load_xml("t.xml", xml)
    return db


class TestStackTreeDesc:
    def test_basic_ad(self):
        db = build_db("<r><a><b/><a><b/></a></a><b/></r>")
        pairs = stack_tree_desc(
            db.tag_lookup("t.xml", "a"), db.tag_lookup("t.xml", "b"), "ad"
        )
        # outer a contains 2 b's, inner a contains 1; the last b is free
        assert len(pairs) == 3

    def test_pc_level_filter(self):
        db = build_db("<r><a><b/><x><b/></x></a></r>")
        pairs = stack_tree_desc(
            db.tag_lookup("t.xml", "a"), db.tag_lookup("t.xml", "b"), "pc"
        )
        assert len(pairs) == 1

    def test_nested_ancestors_all_report(self):
        db = build_db("<r><a><a><a><b/></a></a></a></r>")
        pairs = stack_tree_desc(
            db.tag_lookup("t.xml", "a"), db.tag_lookup("t.xml", "b"), "ad"
        )
        assert len(pairs) == 3

    def test_output_in_descendant_order(self):
        db = build_db("<r><a><b/><b/></a><a><b/></a></r>")
        pairs = stack_tree_desc(
            db.tag_lookup("t.xml", "a"), db.tag_lookup("t.xml", "b"), "ad"
        )
        starts = [d.start for _, d in pairs]
        assert starts == sorted(starts)

    def test_empty_inputs(self):
        db = build_db("<r><a/></r>")
        assert stack_tree_desc([], db.tag_lookup("t.xml", "a"), "ad") == []
        assert stack_tree_desc(db.tag_lookup("t.xml", "a"), [], "ad") == []

    def test_metrics(self):
        db = build_db("<r><a><b/></a></r>")
        metrics = Metrics()
        stack_tree_desc(
            db.tag_lookup("t.xml", "a"),
            db.tag_lookup("t.xml", "b"),
            "ad",
            metrics=metrics,
        )
        assert metrics.structural_joins == 1


# ----------------------------------------------------------------------
# property: stack join == probe join on random trees
# ----------------------------------------------------------------------
@st.composite
def random_document(draw):
    def element(depth):
        tag = draw(st.sampled_from("pq"))
        if depth >= 4:
            return f"<{tag}/>"
        kids = "".join(
            element(depth + 1) for _ in range(draw(st.integers(0, 3)))
        )
        return f"<{tag}>{kids}</{tag}>"

    return f"<r>{element(0)}{element(0)}</r>"


@given(random_document(), st.sampled_from(["pc", "ad"]))
def test_stack_join_matches_probe_join(xml, axis):
    db = build_db(xml)
    ancestors = db.tag_lookup("t.xml", "p")
    descendants = db.tag_lookup("t.xml", "q")
    stack = {
        (a.start, d.start)
        for a, d in stack_tree_desc(ancestors, descendants, axis)
    }
    probe = {
        (a.start, d.start)
        for a, d in pair_join(ancestors, descendants, axis)
    }
    assert stack == probe
