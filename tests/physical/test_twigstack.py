"""Unit and property tests for the TwigStack holistic twig join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physical.twigstack import TwigNode, match_twig_holistic, twig_stack
from repro.storage import Database


def build_db(xml: str) -> Database:
    db = Database()
    db.load_xml("t.xml", xml)
    return db


def twig(db, spec) -> TwigNode:
    """Build a TwigNode tree from a nested spec: (tag, axis, [children])."""
    tag, axis, children = spec
    node = TwigNode(tag, db.tag_lookup("t.xml", tag), axis)
    for child in children:
        node.children.append(twig(db, child))
    return node


class TestTwigStack:
    def test_linear_twig(self):
        db = build_db("<r><a><b><c/></b></a></r>")
        matches = twig_stack(
            twig(db, ("a", "ad", [("b", "ad", [("c", "ad", [])])]))
        )
        assert len(matches) == 1
        assert set(matches[0]) == {"a", "b", "c"}

    def test_branching_twig(self):
        db = build_db("<r><a><b/><c/></a><a><b/></a></r>")
        matches = twig_stack(
            twig(db, ("a", "ad", [("b", "ad", []), ("c", "ad", [])]))
        )
        # only the first <a> has both children
        assert len(matches) == 1

    def test_branch_combinations_multiply(self):
        db = build_db("<r><a><b/><b/><c/><c/></a></r>")
        matches = twig_stack(
            twig(db, ("a", "ad", [("b", "ad", []), ("c", "ad", [])]))
        )
        assert len(matches) == 4

    def test_nested_roots_all_match(self):
        db = build_db("<r><a><a><b/><c/></a></a></r>")
        matches = twig_stack(
            twig(db, ("a", "ad", [("b", "ad", []), ("c", "ad", [])]))
        )
        assert len(matches) == 2  # both a's contain the b and the c

    def test_pc_edges_enforced(self):
        db = build_db("<r><a><x><b/></x><c/></a></r>")
        ad = twig_stack(
            twig(db, ("a", "ad", [("b", "ad", []), ("c", "ad", [])]))
        )
        pc = twig_stack(
            twig(db, ("a", "ad", [("b", "pc", []), ("c", "pc", [])]))
        )
        assert len(ad) == 1
        assert len(pc) == 0

    def test_no_match(self):
        db = build_db("<r><a><b/></a><c/></r>")
        matches = twig_stack(
            twig(db, ("a", "ad", [("b", "ad", []), ("c", "ad", [])]))
        )
        assert matches == []

    def test_duplicate_labels_rejected(self):
        db = build_db("<r><a><a/></a></r>")
        pattern = twig(db, ("a", "ad", []))
        pattern.children.append(TwigNode("a", db.tag_lookup("t.xml", "a")))
        with pytest.raises(ValueError):
            twig_stack(pattern)

    def test_wrapper_fills_streams(self):
        db = build_db("<r><a><b/></a></r>")
        root = TwigNode("a", [])
        root.add_child("b", [])
        matches = match_twig_holistic(db, "t.xml", root)
        assert len(matches) == 1


# ----------------------------------------------------------------------
# property: TwigStack == the pattern matcher on '-'-only patterns
# ----------------------------------------------------------------------
@st.composite
def random_document(draw):
    def element(depth):
        tag = draw(st.sampled_from("pqz"))
        if depth >= 4:
            return f"<{tag}/>"
        kids = "".join(
            element(depth + 1) for _ in range(draw(st.integers(0, 3)))
        )
        return f"<{tag}>{kids}</{tag}>"

    return f"<r>{element(0)}{element(0)}</r>"


@st.composite
def twig_shapes(draw, depth=0):
    """Random twig spec (tag, axis, children) with unique-ish shapes."""
    tag = draw(st.sampled_from("pqz"))
    axis = draw(st.sampled_from(["ad", "pc"])) if depth else "ad"
    children = []
    if depth < 2:
        for _ in range(draw(st.integers(0, 2))):
            children.append(draw(twig_shapes(depth=depth + 1)))
    return (tag, axis, children)


def matcher_reference(db, spec):
    """Ground truth via the APT matcher with '-' edges everywhere."""
    from repro.patterns import APT, PatternMatcher, pattern_node

    counter = [0]
    label_of = {}

    def to_apt(node_spec):
        tag, axis, children = node_spec
        counter[0] += 1
        label = counter[0]
        node = pattern_node(tag, label)
        label_of[label] = tag
        for child_spec in children:
            child, child_axis = to_apt(child_spec)
            node.add_edge(child, child_axis, "-")
        return node, axis

    root_node, _ = to_apt(spec)
    doc_root = pattern_node("doc_root", 0)
    doc_root.add_edge(root_node, "ad", "-")
    matches = PatternMatcher(db).match(APT(doc_root, "t.xml"))
    out = set()
    for tree in matches:
        assignment = []
        for label in sorted(label_of):
            nodes = tree.nodes_in_class(label)
            assignment.append(nodes[0].nid.start)
        out.add(tuple(assignment))
    return out


def twigstack_result(db, spec):
    counter = [0]
    order = []

    def build(node_spec):
        tag, axis, children = node_spec
        counter[0] += 1
        label = f"{tag}#{counter[0]}"
        order.append(label)
        node = TwigNode(label, db.tag_lookup("t.xml", tag), axis)
        for child_spec in children:
            node.children.append(build(child_spec))
        return node

    root = build(spec)
    matches = twig_stack(root)
    return {
        tuple(m[label].start for label in order) for m in matches
    }


@settings(max_examples=60, deadline=None)
@given(random_document(), twig_shapes())
def test_twigstack_matches_pattern_matcher(xml, spec):
    db = build_db(xml)
    assert twigstack_result(db, spec) == matcher_reference(db, spec)
