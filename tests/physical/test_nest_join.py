"""Reproduction of Figure 14: structural join vs nest-structural-join."""

from repro.physical.structural_join import nest_join, pair_join
from repro.storage import Database


def figure14_db() -> Database:
    """Sample data of Figure 14: A1 containing D1, D2 (E1, B1 besides)."""
    db = Database()
    db.load_xml(
        "f14.xml",
        "<root><E/><A><D/><D/></A><B/></root>",
    )
    return db


class TestFigure14:
    def test_structural_join_one_tree_per_pair(self):
        """Regular SJ: an output per matching (A, D) pair."""
        db = figure14_db()
        pairs = pair_join(
            db.tag_lookup("f14.xml", "A"),
            db.tag_lookup("f14.xml", "D"),
            "pc",
        )
        assert len(pairs) == 2
        a_nodes = {p[0] for p in pairs}
        assert len(a_nodes) == 1  # the same A appears twice

    def test_nest_join_one_tree_per_left(self):
        """NSJ (Definition 8): one output clustering all matches."""
        db = figure14_db()
        nested = nest_join(
            db.tag_lookup("f14.xml", "A"),
            db.tag_lookup("f14.xml", "D"),
            "pc",
        )
        assert len(nested) == 1
        parent, cluster = nested[0]
        assert len(cluster) == 2

    def test_cluster_preserves_document_order(self):
        db = figure14_db()
        nested = nest_join(
            db.tag_lookup("f14.xml", "A"),
            db.tag_lookup("f14.xml", "D"),
            "pc",
        )
        starts = [d.start for d in nested[0][1]]
        assert starts == sorted(starts)
