"""Unit and property tests for the holistic PathStack algorithm."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.physical.holistic import match_path_holistic, path_stack
from repro.physical.structural_join import pair_join
from repro.storage import Database
from repro.storage.stats import Metrics


def build_db(xml: str) -> Database:
    db = Database()
    db.load_xml("t.xml", xml)
    return db


class TestPathStack:
    def test_simple_chain(self):
        db = build_db("<r><a><b><c/></b></a></r>")
        solutions = match_path_holistic(
            db, "t.xml", [("ad", "a"), ("ad", "b"), ("ad", "c")]
        )
        assert len(solutions) == 1

    def test_multiple_solutions(self):
        db = build_db("<r><a><b/><b/></a><a><b/></a></r>")
        solutions = match_path_holistic(
            db, "t.xml", [("ad", "a"), ("ad", "b")]
        )
        assert len(solutions) == 3

    def test_nested_ancestors_multiply(self):
        db = build_db("<r><a><a><b/></a></a></r>")
        solutions = match_path_holistic(
            db, "t.xml", [("ad", "a"), ("ad", "b")]
        )
        assert len(solutions) == 2  # both a's pair with the b

    def test_pc_axis(self):
        db = build_db("<r><a><x><b/></x><b/></a></r>")
        ad = match_path_holistic(db, "t.xml", [("ad", "a"), ("ad", "b")])
        pc = match_path_holistic(db, "t.xml", [("ad", "a"), ("pc", "b")])
        assert len(ad) == 2
        assert len(pc) == 1

    def test_leaf_document_order(self):
        db = build_db("<r><a><b/></a><a><b/></a></r>")
        solutions = match_path_holistic(
            db, "t.xml", [("ad", "a"), ("ad", "b")]
        )
        leaf_starts = [s[-1].start for s in solutions]
        assert leaf_starts == sorted(leaf_starts)

    def test_no_candidates(self):
        db = build_db("<r><a/></r>")
        assert match_path_holistic(
            db, "t.xml", [("ad", "a"), ("ad", "zz")]
        ) == []

    def test_empty_pattern(self):
        assert path_stack([], []) == []

    def test_axis_count_validated(self):
        with pytest.raises(ValueError):
            path_stack([[]], [])

    def test_metrics(self):
        db = build_db("<r><a><b/></a></r>")
        metrics = Metrics()
        match_path_holistic(
            db, "t.xml", [("ad", "a"), ("ad", "b")], metrics
        )
        assert metrics.structural_joins == 1


# ----------------------------------------------------------------------
# property: PathStack == cascaded binary structural joins
# ----------------------------------------------------------------------
@st.composite
def random_document(draw):
    def element(depth):
        tag = draw(st.sampled_from("pqz"))
        if depth >= 4:
            return f"<{tag}/>"
        kids = "".join(
            element(depth + 1) for _ in range(draw(st.integers(0, 3)))
        )
        return f"<{tag}>{kids}</{tag}>"

    return f"<r>{element(0)}{element(0)}</r>"


def binary_join_path(db, steps):
    """Reference: evaluate the chain with per-edge binary joins."""
    root = db.document("t.xml").root_id
    partials = [(root,)]
    for axis, tag in steps:
        candidates = db.tag_lookup("t.xml", tag)
        pairs = pair_join(
            partials,
            candidates,
            axis,
            parent_id=lambda chain: chain[-1],
        )
        partials = [chain + (child,) for chain, child in pairs]
    return {tuple(n.start for n in chain[1:]) for chain in partials}


@given(
    random_document(),
    st.lists(
        st.tuples(st.sampled_from(["ad", "pc"]), st.sampled_from("pqz")),
        min_size=1,
        max_size=3,
    ),
)
def test_pathstack_matches_binary_joins(xml, steps):
    db = build_db(xml)
    holistic = {
        tuple(n.start for n in solution)
        for solution in match_path_holistic(db, "t.xml", steps)
    }
    assert holistic == binary_join_path(db, steps)
