"""Unit tests for the Figure 5 fragment parser."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery import (
    AggrExpr,
    AggrPredicate,
    BoolExpr,
    ElementConstructor,
    FLWOR,
    ForClause,
    LetClause,
    PathExpr,
    Quantifier,
    SimplePredicate,
    ValueJoin,
    parse_query,
)


def parse(text: str) -> FLWOR:
    return parse_query(text)


class TestPaths:
    def test_document_rooted_path(self):
        ast = parse('FOR $p IN document("a.xml")//person RETURN $p')
        source = ast.clauses[0].source
        assert source.doc == "a.xml"
        assert [(s.axis, s.name) for s in source.steps] == [
            ("ad", "person")
        ]

    def test_mixed_axes(self):
        ast = parse('FOR $p IN document("a")/site//open_auction/bidder '
                    "RETURN $p")
        steps = ast.clauses[0].source.steps
        assert [(s.axis, s.name) for s in steps] == [
            ("pc", "site"), ("ad", "open_auction"), ("pc", "bidder"),
        ]

    def test_attribute_step(self):
        ast = parse('FOR $p IN document("a")//person WHERE $p/@id = "x" '
                    "RETURN $p")
        assert ast.where.path.steps[0].name == "@id"

    def test_text_function(self):
        ast = parse('FOR $p IN document("a")//person '
                    "RETURN $p/name/text()")
        assert ast.ret.text_fn
        assert ast.ret.steps[-1].name == "name"

    def test_element_named_text_is_a_step(self):
        ast = parse('FOR $p IN document("a")//listitem/text/keyword '
                    "RETURN $p")
        names = [s.name for s in ast.clauses[0].source.steps]
        assert names == ["listitem", "text", "keyword"]

    def test_doc_alias(self):
        ast = parse('FOR $p IN doc("a.xml")//x RETURN $p')
        assert ast.clauses[0].source.doc == "a.xml"

    def test_path_must_have_source(self):
        with pytest.raises(XQuerySyntaxError):
            parse("FOR $p IN //person RETURN $p")


class TestClauses:
    def test_multiple_for(self):
        ast = parse(
            'FOR $a IN document("d")//x FOR $b IN document("d")//y '
            "RETURN $a"
        )
        assert [c.var for c in ast.clauses] == ["a", "b"]
        assert all(isinstance(c, ForClause) for c in ast.clauses)

    def test_comma_separated_bindings(self):
        ast = parse(
            'FOR $a IN document("d")//x, $b IN document("d")//y RETURN $a'
        )
        assert [c.var for c in ast.clauses] == ["a", "b"]

    def test_let_with_path(self):
        ast = parse(
            'FOR $a IN document("d")//x LET $l := $a/y RETURN $a'
        )
        assert isinstance(ast.clauses[1], LetClause)
        assert ast.clauses[1].source.var == "a"

    def test_let_with_nested_flwor(self):
        ast = parse(
            'FOR $a IN document("d")//x '
            'LET $l := FOR $b IN document("d")//y RETURN <t/> '
            "RETURN $a"
        )
        assert isinstance(ast.clauses[1].source, FLWOR)

    def test_parenthesised_nested_flwor(self):
        ast = parse(
            'FOR $a IN document("d")//x '
            'LET $l := (FOR $b IN document("d")//y RETURN <t/>) '
            "RETURN $a"
        )
        assert isinstance(ast.clauses[1].source, FLWOR)

    def test_missing_return_raises(self):
        with pytest.raises(XQuerySyntaxError):
            parse('FOR $a IN document("d")//x')

    def test_flwor_must_start_with_binding(self):
        with pytest.raises(XQuerySyntaxError):
            parse("RETURN <a/>")


class TestWhere:
    def q(self, where: str) -> FLWOR:
        return parse(
            f'FOR $a IN document("d")//x WHERE {where} RETURN $a'
        )

    def test_simple_predicate(self):
        where = self.q("$a/age > 25").where
        assert isinstance(where, SimplePredicate)
        assert where.op == ">" and where.value == 25

    def test_string_value(self):
        where = self.q('$a/name = "gold"').where
        assert where.value == "gold"

    def test_aggregate_predicate(self):
        where = self.q("count($a/b) >= 5").where
        assert isinstance(where, AggrPredicate)
        assert where.fname == "count" and where.op == ">="

    def test_value_join(self):
        where = self.q("$a/@id = $a/b/@ref").where
        assert isinstance(where, ValueJoin)

    def test_quantifiers(self):
        where = self.q(
            "EVERY $i IN $a/q SATISFIES $i > 2"
        ).where
        assert isinstance(where, Quantifier)
        assert where.kind == "every"
        some = self.q("SOME $i IN $a/q SATISFIES $i > 2").where
        assert some.kind == "some"

    def test_and_or_precedence(self):
        where = self.q("$a/x = 1 OR $a/y = 2 AND $a/z = 3").where
        assert isinstance(where, BoolExpr) and where.op == "or"
        assert isinstance(where.right, BoolExpr) and where.right.op == "and"

    def test_parentheses(self):
        where = self.q("($a/x = 1 OR $a/y = 2) AND $a/z = 3").where
        assert where.op == "and"
        assert where.left.op == "or"

    def test_case_insensitive_keywords(self):
        ast = parse(
            'for $a in document("d")//x where $a/y < 9 return $a'
        )
        assert isinstance(ast.where, SimplePredicate)

    def test_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            assert self.q(f"$a/v {op} 1").where.op == op


class TestReturn:
    def q(self, ret: str) -> FLWOR:
        return parse(f'FOR $a IN document("d")//x RETURN {ret}')

    def test_bare_path(self):
        assert isinstance(self.q("$a/name").ret, PathExpr)

    def test_aggregate(self):
        ret = self.q("count($a/b)").ret
        assert isinstance(ret, AggrExpr)

    def test_constructor_with_brace_attr(self):
        ret = self.q("<p name={$a/name/text()}>{$a/b}</p>").ret
        assert isinstance(ret, ElementConstructor)
        assert ret.attrs[0][0] == "name"
        assert isinstance(ret.attrs[0][1], PathExpr)
        assert len(ret.children) == 1

    def test_constructor_with_literal_attr(self):
        ret = self.q('<p kind="x"/>').ret
        assert ret.attrs == [("kind", "x")]

    def test_bare_path_content(self):
        """The paper's Q1 style: <person> $o/bidder </person>."""
        ret = self.q("<p> $a/bidder </p>").ret
        assert isinstance(ret.children[0], PathExpr)

    def test_nested_constructors(self):
        ret = self.q("<p><q>{$a/b/text()}</q><r/></p>").ret
        assert [c.tag for c in ret.children] == ["q", "r"]

    def test_literal_text_content(self):
        ret = self.q("<p>hello</p>").ret
        assert ret.children[0].text == "hello"

    def test_nested_flwor_in_return(self):
        ret = self.q(
            '<p>{FOR $b IN document("d")//y RETURN <q/>}</p>'
        ).ret
        assert isinstance(ret.children[0], FLWOR)

    def test_mismatched_close_tag(self):
        with pytest.raises(XQuerySyntaxError):
            self.q("<p></q>")

    def test_aggregate_in_content(self):
        ret = self.q("<p>{count($a/b)}</p>").ret
        assert isinstance(ret.children[0], AggrExpr)


class TestOrderBy:
    def test_order_clause(self):
        ast = parse(
            'FOR $a IN document("d")//x ORDER BY $a/k Descending '
            "RETURN $a"
        )
        assert ast.order.descending
        assert len(ast.order.paths) == 1

    def test_multiple_keys_default_ascending(self):
        ast = parse(
            'FOR $a IN document("d")//x ORDER BY $a/k, $a/j RETURN $a'
        )
        assert not ast.order.descending
        assert len(ast.order.paths) == 2


class TestMisc:
    def test_comments_skipped(self):
        ast = parse(
            '(: finds things :) FOR $a IN document("d")//x RETURN $a'
        )
        assert ast.clauses[0].var == "a"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse('FOR $a IN document("d")//x RETURN $a garbage')

    def test_error_location(self):
        with pytest.raises(XQuerySyntaxError) as excinfo:
            parse('FOR $a IN document("d")//x\nWHERE $a/y ~ 3 RETURN $a')
        assert excinfo.value.line == 2


class TestContains:
    def test_contains_predicate(self):
        ast = parse(
            'FOR $i IN document("d")//item '
            'WHERE contains($i//keyword, "gold") RETURN $i'
        )
        assert isinstance(ast.where, SimplePredicate)
        assert ast.where.op == "contains"
        assert ast.where.value == "gold"

    def test_contains_combines_with_and(self):
        ast = parse(
            'FOR $i IN document("d")//item '
            'WHERE contains($i/name, "go") AND $i/quantity > 2 RETURN $i'
        )
        assert isinstance(ast.where, BoolExpr)
