"""Unit tests for the Figure 6 translation algorithm."""

import pytest

from repro.core import (
    AggregateOp,
    ConstructOp,
    DedupOp,
    FilterOp,
    JoinOp,
    ProjectOp,
    SelectOp,
    SortOp,
)
from repro.core.filter import TreeFilterOp
from repro.errors import TranslationError, XQuerySyntaxError
from repro.xquery import translate_query

Q1 = '''
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 5 AND $p//age > 25
  AND $p/@id = $o/bidder//@person
RETURN <person name={$p/name/text()}> $o/bidder </person>
'''

Q2 = '''
FOR $p IN document("auction.xml")//person
LET $a := FOR $o IN document("auction.xml")//open_auction
          WHERE count($o/bidder) > 5
            AND $p/@id = $o/bidder//@person
          RETURN <myauction> {$o/bidder}
                 <myquan>{$o/quantity/text()}</myquan>
                 </myauction>
WHERE $p//age > 25
  AND EVERY $i IN $a/myquan SATISFIES $i > 2
RETURN <person name={$p/name/text()}>{$a/bidder}</person>
'''


def ops_of(plan, op_type):
    return [op for op in plan.walk() if isinstance(op, op_type)]


class TestQ1PlanShape:
    """The translated plan must have the Figure 7 structure."""

    def setup_method(self):
        self.result = translate_query(Q1)
        self.plan = self.result.plan

    def test_top_is_construct(self):
        assert isinstance(self.plan, ConstructOp)
        assert self.plan.ctree.tag == "person"

    def test_two_leaf_selects(self):
        leaves = [
            op
            for op in ops_of(self.plan, SelectOp)
            if op.apt.root.lc_ref is None
        ]
        assert len(leaves) == 2  # boxes 1 and 2

    def test_two_extension_selects(self):
        extensions = [
            op
            for op in ops_of(self.plan, SelectOp)
            if op.apt.root.lc_ref is not None
        ]
        assert len(extensions) == 2  # boxes 8 and 9

    def test_extension_edges_are_star(self):
        for op in ops_of(self.plan, SelectOp):
            if op.apt.root.lc_ref is not None:
                assert op.apt.root.edges[0].mspec == "*"

    def test_aggregate_and_filter_on_auction_branch(self):
        aggregates = ops_of(self.plan, AggregateOp)
        assert len(aggregates) == 1  # box 3
        assert aggregates[0].fname == "count"
        filters = ops_of(self.plan, FilterOp)
        assert any(f.predicate.op == ">" and f.predicate.value == 5
                   for f in filters)  # box 4

    def test_join_with_value_predicate(self):
        joins = ops_of(self.plan, JoinOp)
        assert len(joins) == 1  # box 5
        assert len(joins[0].predicates) == 1
        assert joins[0].predicates[0].op == "="

    def test_projection_keeps_vars_and_root(self):
        projects = ops_of(self.plan, ProjectOp)
        assert len(projects) == 1  # box 6
        keep = set(projects[0].keep_lcls)
        var_lcls = self.result.var_lcls
        assert var_lcls["p"] in keep
        assert var_lcls["o"] in keep
        joins = ops_of(self.plan, JoinOp)
        assert joins[0].root_lcl in keep

    def test_nodeid_dedup_on_for_vars(self):
        dedups = ops_of(self.plan, DedupOp)
        assert len(dedups) == 1  # box 7
        var_lcls = self.result.var_lcls
        assert set(dedups[0].lcls) == {var_lcls["p"], var_lcls["o"]}

    def test_selection2_has_two_bidder_nodes(self):
        """Figure 7's Selection 2: bidder appears under * and under -."""
        leaves = [
            op
            for op in ops_of(self.plan, SelectOp)
            if op.apt.root.lc_ref is None
        ]
        auction_apt = next(
            op.apt
            for op in leaves
            if any(
                n.test.tag == "open_auction" for n in op.apt.nodes()
            )
        )
        auction = next(
            n for n in auction_apt.nodes()
            if n.test.tag == "open_auction"
        )
        mspecs = sorted(
            e.mspec for e in auction.edges if e.child.test.tag == "bidder"
        )
        assert mspecs == ["*", "-"]

    def test_construct_pattern(self):
        ctree = self.plan.ctree
        assert ctree.attrs[0][0] == "name"
        assert ctree.attrs[0][1].text_only
        assert len(ctree.children) == 1


class TestQ2PlanShape:
    """The translated plan must have the Figure 8 structure."""

    def setup_method(self):
        self.result = translate_query(Q2)
        self.plan = self.result.plan

    def test_two_constructs(self):
        constructs = ops_of(self.plan, ConstructOp)
        tags = sorted(c.ctree.tag for c in constructs)
        assert tags == ["myauction", "person"]  # boxes 8 and 14

    def test_join_nests_with_star(self):
        joins = ops_of(self.plan, JoinOp)
        assert len(joins) == 1  # box 9
        assert joins[0].right_mspec == "*"
        assert joins[0].predicates[0].op == "="  # the deferred (7)=(9)

    def test_every_filter_above_join(self):
        filters = ops_of(self.plan, FilterOp)
        every = [f for f in filters if f.mode == "E"]
        assert len(every) == 1  # box 10
        assert every[0].predicate.value == 2

    def test_inner_projection_keeps_join_class(self):
        """Figure 8: (9) survives Project 5 to participate in Join 9."""
        joins = ops_of(self.plan, JoinOp)
        join_pred = joins[0].predicates[0]
        projects = ops_of(self.plan, ProjectOp)
        inner_projects = [
            p for p in projects if join_pred.right_lcl in p.keep_lcls
        ]
        assert inner_projects

    def test_inner_construct_carries_join_class(self):
        """Figure 8: Construct 8 splices (9) so Join 9 can read it."""
        from repro.core import CClassRef

        constructs = ops_of(self.plan, ConstructOp)
        inner = next(
            c for c in constructs if c.ctree.tag == "myauction"
        )
        join_pred = ops_of(self.plan, JoinOp)[0].predicates[0]
        refs = [
            c for c in inner.ctree.children
            if isinstance(c, CClassRef) and c.lcl == join_pred.right_lcl
        ]
        assert refs and refs[0].hidden

    def test_outer_return_resolves_into_inner_construct(self):
        """$a/bidder resolves statically to the inner spliced class."""
        from repro.core import CClassRef

        outer = self.plan
        splice = [
            c for c in outer.ctree.children if isinstance(c, CClassRef)
        ]
        assert splice
        tags = self.result.class_tags
        assert tags.get(splice[0].lcl) == "bidder"


class TestOtherForms:
    def test_order_by_emits_sort(self):
        plan = translate_query(
            'FOR $i IN document("d")//item ORDER BY $i/location '
            "RETURN <x>{$i/name/text()}</x>"
        ).plan
        assert len(ops_of(plan, SortOp)) == 1

    def test_or_emits_tree_filter(self):
        plan = translate_query(
            'FOR $i IN document("d")//item '
            'WHERE $i/@id = "a" OR $i/@id = "b" RETURN $i'
        ).plan
        assert len(ops_of(plan, TreeFilterOp)) == 1

    def test_same_source_join_emits_tree_filter(self):
        plan = translate_query(
            'FOR $i IN document("d")//open_auction '
            "WHERE $i/initial = $i/current RETURN $i"
        ).plan
        assert len(ops_of(plan, TreeFilterOp)) == 1
        assert len(ops_of(plan, JoinOp)) == 0

    def test_bare_variable_return(self):
        from repro.core import CClassRef

        plan = translate_query(
            'FOR $i IN document("d")//item RETURN $i'
        ).plan
        assert isinstance(plan, ConstructOp)
        assert isinstance(plan.ctree, CClassRef)

    def test_aggregate_return(self):
        plan = translate_query(
            'FOR $s IN document("d")/site RETURN count($s//item)'
        ).plan
        assert len(ops_of(plan, AggregateOp)) == 1

    def test_unbound_variable_rejected(self):
        with pytest.raises(TranslationError):
            translate_query(
                'FOR $a IN document("d")//x WHERE $b/y = 1 RETURN $a'
            )

    def test_let_path_uses_star_edges(self):
        result = translate_query(
            'FOR $a IN document("d")//x LET $l := $a/y RETURN <o>{$l}</o>'
        )
        leaves = [
            op
            for op in ops_of(result.plan, SelectOp)
            if op.apt.root.lc_ref is None
        ]
        apt = leaves[0].apt
        x_node = apt.root.edges[0].child
        assert x_node.edges[0].mspec == "*"

    def test_simple_predicate_lands_on_pattern_leaf(self):
        result = translate_query(
            'FOR $a IN document("d")//x WHERE $a/age > 25 RETURN $a'
        )
        leaves = [
            op
            for op in ops_of(result.plan, SelectOp)
            if op.apt.root.lc_ref is None
        ]
        age = next(
            n for n in leaves[0].apt.nodes() if n.test.tag == "age"
        )
        assert age.test.comparisons == ((">", 25),)
