"""Translator coverage for less common query shapes."""

import pytest

from repro.core import Context, JoinOp, SelectOp, evaluate
from repro.errors import TranslationError
from repro.storage import Database
from repro.xquery import translate_query
from tests.conftest import TINY_AUCTION


def run(db, query):
    return evaluate(translate_query(query).plan, Context(db))


class TestVariableChaining:
    def test_for_over_variable_path(self, tiny_db):
        """FOR $b IN $o/bidder extends the same pattern tree."""
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            FOR $b IN $o/bidder
            RETURN <i>{$b/increase/text()}</i>
        ''')
        assert len(result) == 4  # one per bidder
        values = sorted(t.root.value for t in result)
        assert values == ["1", "25", "3", "7"]

    def test_chained_for_shares_one_select(self, tiny_db):
        translation = translate_query('''
            FOR $o IN document("auction.xml")//open_auction
            FOR $b IN $o/bidder
            RETURN <i>{$b/increase/text()}</i>
        ''')
        leaves = [
            op
            for op in translation.plan.walk()
            if isinstance(op, SelectOp) and op.apt.root.lc_ref is None
        ]
        assert len(leaves) == 1
        assert not any(
            isinstance(op, JoinOp) for op in translation.plan.walk()
        )

    def test_let_path_binding(self, tiny_db):
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            LET $b := $o/bidder
            RETURN <n>{count($b)}</n>
        ''')
        counts = sorted(t.root.value for t in result)
        assert counts == ["0", "1", "3"]

    def test_quantifier_var_reusable(self, tiny_db):
        """The quantifier binds its variable for later clauses."""
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            WHERE SOME $i IN $o/bidder/increase SATISFIES $i > 20
            RETURN <q>{$o/quantity/text()}</q>
        ''')
        assert len(result) == 1


class TestMultipleDocuments:
    def test_cross_document_join(self):
        db = Database()
        db.load_xml("auction.xml", TINY_AUCTION)
        db.load_xml(
            "vip.xml",
            "<vips><vip ref='p3'/><vip ref='p9'/></vips>",
        )
        result = run(db, '''
            FOR $p IN document("auction.xml")//person
            FOR $v IN document("vip.xml")//vip
            WHERE $p/@id = $v/@ref
            RETURN <hit>{$p/name/text()}</hit>
        ''')
        assert [t.to_xml() for t in result] == ["<hit>Carol</hit>"]


class TestNestedShapes:
    def test_two_source_inner_block(self, tiny_db):
        """The x9 shape: the nested query joins two sources itself."""
        result = run(tiny_db, '''
            FOR $p IN document("auction.xml")//person
            LET $a := FOR $o IN document("auction.xml")//open_auction
                      FOR $q IN document("auction.xml")//person
                      WHERE $o/bidder//@person = $p/@id
                        AND $q/@id = $o/bidder//@person
                      RETURN <t/>
            RETURN <n c={count($a)}>{$p/name/text()}</n>
        ''')
        assert len(result) == 3

    def test_return_nested_flwor(self, tiny_db):
        result = run(tiny_db, '''
            FOR $p IN document("auction.xml")//person
            RETURN <person name={$p/name/text()}>
              {FOR $o IN document("auction.xml")//open_auction
               WHERE $o/bidder//@person = $p/@id
               RETURN <won>{$o/quantity/text()}</won>}
            </person>
        ''')
        by_name = {
            t.root.children[0].value: t for t in result
        }
        assert len(by_name["Alice"].root.children) == 2  # @name + 1 won
        assert len(by_name["Bob"].root.children) == 1  # no auctions
        assert len(by_name["Carol"].root.children) == 3

    def test_correlated_inner_must_construct(self, tiny_db):
        with pytest.raises(TranslationError):
            translate_query('''
                FOR $p IN document("auction.xml")//person
                LET $a := FOR $o IN document("auction.xml")//open_auction
                          WHERE $o/bidder//@person = $p/@id
                          RETURN $o/quantity/text()
                RETURN <n>{count($a)}</n>
            ''')


class TestDegenerateCases:
    def test_no_where_clause(self, tiny_db):
        result = run(tiny_db, '''
            FOR $p IN document("auction.xml")//person RETURN $p/name
        ''')
        assert len(result) == 3

    def test_missing_document(self, tiny_db):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            run(tiny_db, 'FOR $p IN document("nope.xml")//x RETURN $p')

    def test_path_matching_nothing(self, tiny_db):
        result = run(tiny_db, '''
            FOR $p IN document("auction.xml")//unicorn RETURN $p
        ''')
        assert len(result) == 0

    def test_aggregate_attribute_value(self, tiny_db):
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            RETURN <r n={count($o/bidder)}/>
        ''')
        values = sorted(t.root.children[0].value for t in result)
        assert values == ["0", "1", "3"]
