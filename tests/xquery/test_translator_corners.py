"""Translator coverage: OR with aggregates, quantifier paths, multi-key
ORDER BY, LET over doc paths, and contains() end-to-end."""

import pytest

from repro.core import Context, evaluate
from repro.errors import TranslationError
from repro.xquery import translate_query
from tests.conftest import canonical_sorted


def run(db, query):
    return evaluate(translate_query(query).plan, Context(db))


class TestOrWithAggregates:
    def test_or_of_simple_and_count(self, tiny_db):
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            WHERE count($o/bidder) > 2 OR $o/reserve > 100
            RETURN <h>{$o/@id}</h>
        ''')
        # a1 via count=3, a2 via reserve=150
        assert len(result) == 2

    def test_or_three_disjuncts(self, tiny_db):
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            WHERE $o/@id = "a1" OR $o/@id = "a2" OR $o/@id = "a3"
            RETURN <h/>
        ''')
        assert len(result) == 3

    def test_or_then_and(self, tiny_db):
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            WHERE ($o/@id = "a1" OR $o/@id = "a2") AND $o/quantity > 1
            RETURN <h>{$o/@id}</h>
        ''')
        assert len(result) == 1  # only a1 has quantity 5 > 1


class TestQuantifierWithPath:
    def test_every_with_extension_steps(self, tiny_db):
        """EVERY $b IN $o/bidder SATISFIES $b/increase > 0 — the inner
        predicate path extends from the quantified variable."""
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            WHERE EVERY $b IN $o/bidder SATISFIES $b/increase > 0
            RETURN <q>{$o/@id}</q>
        ''')
        # all bidders everywhere have positive increases; a3 vacuous
        assert len(result) == 3

    def test_some_with_extension_steps(self, tiny_db):
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            WHERE SOME $b IN $o/bidder SATISFIES $b/increase > 20
            RETURN <q>{$o/@id}</q>
        ''')
        assert len(result) == 1


class TestOrderBy:
    def test_multi_key_sort(self, tiny_db):
        result = run(tiny_db, '''
            FOR $o IN document("auction.xml")//open_auction
            ORDER BY $o/quantity, $o/initial
            RETURN <o q={$o/quantity/text()}/>
        ''')
        quantities = [t.root.children[0].value for t in result]
        assert quantities == ["1", "2", "5"]

    def test_order_by_variable_itself(self, tiny_db):
        result = run(tiny_db, '''
            FOR $q IN document("auction.xml")//quantity
            ORDER BY $q Descending
            RETURN <v>{$q/text()}</v>
        ''')
        values = [t.root.value for t in result]
        assert values == ["5", "2", "1"]


class TestLetOverDocPath:
    def test_let_document_path(self, tiny_db):
        result = run(tiny_db, '''
            FOR $s IN document("auction.xml")/site
            LET $b := $s//bidder
            RETURN <total>{count($b)}</total>
        ''')
        assert len(result) == 1
        assert result[0].root.value == "4"


class TestContainsEndToEnd:
    def test_contains_via_all_engines(self, tiny_engine):
        query = (
            'FOR $p IN document("auction.xml")//person '
            'WHERE contains($p/name, "ob") RETURN $p/name'
        )
        reference = canonical_sorted(tiny_engine.run(query))
        assert len(reference) == 1  # Bob
        for engine in ("gtp", "tax", "nav"):
            assert reference == canonical_sorted(
                tiny_engine.run(query, engine=engine)
            )

    def test_contains_skips_value_index(self, tiny_db):
        """contains cannot use the value index; the matcher must scan."""
        result = run(tiny_db, '''
            FOR $p IN document("auction.xml")//person
            WHERE contains($p/@id, "p")
            RETURN $p/name
        ''')
        assert len(result) == 3


class TestErrors:
    def test_order_by_outer_variable_rejected(self, tiny_db):
        with pytest.raises(TranslationError):
            translate_query('''
                FOR $p IN document("auction.xml")//person
                LET $a := FOR $o IN document("auction.xml")//open_auction
                          WHERE $o/bidder//@person = $p/@id
                          ORDER BY $p/name
                          RETURN <t/>
                RETURN <r>{count($a)}</r>
            ''')

    def test_correlated_simple_predicate_rejected(self, tiny_db):
        with pytest.raises(TranslationError):
            translate_query('''
                FOR $p IN document("auction.xml")//person
                LET $a := FOR $o IN document("auction.xml")//open_auction
                          WHERE $p/name = "Alice"
                          RETURN <t/>
                RETURN <r>{count($a)}</r>
            ''')
