"""Unit tests for the synthetic XMark generator."""

import pytest

from repro.storage import Database, parse_xml
from repro.xmark import FACTOR1_COUNTS, REGIONS, XMarkGenerator, scaled
from repro.xmark.queries import FIGURE15_ORDER, QUERIES


class TestScaling:
    def test_scaled_keeps_minimum_one(self):
        assert scaled(1000, 0.00001) == 1
        assert scaled(1000, 0.5) == 500

    def test_factor1_ratios_preserved(self):
        gen = XMarkGenerator(factor=0.01)
        assert gen.n_persons == round(FACTOR1_COUNTS["person"] * 0.01)
        assert gen.n_open == round(FACTOR1_COUNTS["open_auction"] * 0.01)
        assert gen.n_closed == round(
            FACTOR1_COUNTS["closed_auction"] * 0.01
        )

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            XMarkGenerator(factor=0)


class TestDeterminism:
    def test_same_seed_same_document(self):
        a = XMarkGenerator(0.002, seed=7).generate_xml()
        b = XMarkGenerator(0.002, seed=7).generate_xml()
        assert a == b

    def test_different_seed_different_document(self):
        a = XMarkGenerator(0.002, seed=7).generate_xml()
        b = XMarkGenerator(0.002, seed=8).generate_xml()
        assert a != b


class TestSchema:
    @pytest.fixture(scope="class")
    def site(self):
        return XMarkGenerator(0.002).generate()

    def test_top_level_sections(self, site):
        assert [c.tag for c in site.children] == [
            "regions", "categories", "people", "open_auctions",
            "closed_auctions",
        ]

    def test_all_regions_present(self, site):
        regions = site.children[0]
        assert [r.tag for r in regions.children] == list(REGIONS)

    def test_counts(self, site):
        gen = XMarkGenerator(0.002)
        assert len(site.find_all("person")) == gen.n_persons
        assert len(site.find_all("open_auction")) == gen.n_open
        assert len(site.find_all("item")) == gen.n_items

    def test_person_ids_are_referencable(self, site):
        ids = {p.attrs["id"] for p in site.find_all("person")}
        refs = {
            b.attrs["person"] for b in site.find_all("personref")
        }
        assert refs <= ids

    def test_bidder_tail_exceeds_five(self, site):
        """Q1/Q2 need auctions with more than 5 bidders."""
        heavy = [
            a
            for a in site.find_all("open_auction")
            if len([c for c in a.children if c.tag == "bidder"]) > 5
        ]
        assert heavy

    def test_optional_age(self, site):
        persons = site.find_all("person")
        with_age = [p for p in persons if p.find_all("age")]
        assert 0 < len(with_age) < len(persons)

    def test_deep_parlist_chain_exists(self, site):
        """x15/x16 walk closed_auction//parlist/listitem/text/keyword."""
        keywords = [
            k
            for c in site.find_all("closed_auction")
            for k in c.find_all("keyword")
        ]
        assert keywords

    def test_generated_xml_parses(self):
        text = XMarkGenerator(0.001).generate_xml()
        root = parse_xml(text)
        assert root.tag == "site"

    def test_load_into_database(self):
        db = Database()
        doc = XMarkGenerator(0.001).load_into(db)
        assert len(db.tag_lookup("auction.xml", "person")) >= 1
        assert len(doc) > 100


class TestQuerySuite:
    def test_every_figure15_row_has_a_query(self):
        for name in FIGURE15_ORDER:
            assert name in QUERIES
            assert QUERIES[name].comment

    def test_q1_q2_use_paper_text_shape(self):
        assert "count($o/bidder) > 5" in QUERIES["Q1"].text
        assert "myauction" in QUERIES["Q2"].text

    def test_adaptations_documented(self):
        for name in ("x2", "x4", "x14", "x17"):
            assert QUERIES[name].adaptation
