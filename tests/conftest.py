"""Shared fixtures: a tiny hand-written auction database and XMark data."""

from __future__ import annotations

import pytest

from repro import Engine
from repro.storage import Database
from repro.xmark import load_xmark

#: A small auction document exercising every feature the queries need:
#: repeated bidders, optional age/reserve, attributes, nesting.
TINY_AUCTION = """
<site>
 <people>
  <person id="p1"><name>Alice</name><profile><age>30</age></profile></person>
  <person id="p2"><name>Bob</name><profile></profile></person>
  <person id="p3"><name>Carol</name><profile><age>40</age></profile></person>
 </people>
 <open_auctions>
  <open_auction id="a1">
    <initial>10</initial>
    <bidder><personref person="p1"/><increase>3</increase></bidder>
    <bidder><personref person="p3"/><increase>25</increase></bidder>
    <bidder><personref person="p1"/><increase>7</increase></bidder>
    <quantity>5</quantity>
  </open_auction>
  <open_auction id="a2">
    <initial>100</initial>
    <reserve>150</reserve>
    <bidder><personref person="p3"/><increase>1</increase></bidder>
    <quantity>1</quantity>
  </open_auction>
  <open_auction id="a3">
    <initial>50</initial>
    <quantity>2</quantity>
  </open_auction>
 </open_auctions>
</site>
"""


@pytest.fixture
def tiny_db() -> Database:
    """A fresh database loaded with the tiny auction document."""
    db = Database()
    db.load_xml("auction.xml", TINY_AUCTION)
    return db


@pytest.fixture
def tiny_engine(tiny_db) -> Engine:
    """An engine over the tiny auction document."""
    return Engine(tiny_db)


@pytest.fixture(scope="session")
def xmark_engine() -> Engine:
    """A session-wide engine with XMark data at a small factor."""
    engine = Engine()
    load_xmark(engine.db, factor=0.002)
    return engine


def canonical_sorted(sequence):
    """Order-insensitive content fingerprint of a result forest."""
    return sorted(repr(tree.canonical(True)) for tree in sequence)
