#!/usr/bin/env python
"""Regenerate Figure 16: plain TLC plans vs rewrite-optimized plans.

Usage::

    python benchmarks/report_fig16.py [--factor 0.005] [--repeats 5]

Also prints, per query, which rewrites fired (Flatten, Shadow,
Illuminate) and the saved data accesses.
"""

from __future__ import annotations

import argparse

from repro.bench import Harness, figure16_table
from repro.rewrites import optimize
from repro.xmark import FIGURE16_QUERIES, QUERIES
from repro.xquery import translate_query


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--factor", type=float, default=0.005)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()

    harness = Harness()
    print(f"Figure 16 — TLC vs OPT, XMark factor {args.factor}\n")
    reports = harness.figure16(factor=args.factor, repeats=args.repeats)
    print(figure16_table(reports))

    print("\nRewrites applied per query:")
    for name in FIGURE16_QUERIES:
        _, log = optimize(translate_query(QUERIES[name].text).plan)
        parts = []
        if log.flattened:
            parts.append(f"Flatten{log.flattened}")
        if log.shadowed:
            parts.append(f"Shadow{log.shadowed}")
        if log.illuminated:
            parts.append(f"Illuminate{log.illuminated}")
        print(f"  {name:4s} " + (", ".join(parts) or "none"))

    print("\nData-access savings (stored nodes touched):")
    engine = harness.engine_for(args.factor)
    for name in FIGURE16_QUERIES:
        query = QUERIES[name].text
        engine.db.reset_metrics()
        engine.run(query, engine="tlc")
        plain = engine.db.metrics.nodes_touched
        engine.db.reset_metrics()
        engine.run(query, engine="tlc", optimize=True)
        opt = engine.db.metrics.nodes_touched
        print(f"  {name:4s} {plain:>8d} -> {opt:>8d}")


if __name__ == "__main__":
    main()
