#!/usr/bin/env python
"""Regenerate Figure 17: TLC scalability across XMark factors.

Usage::

    python benchmarks/report_fig17.py [--factors 0.001,0.002,0.005,0.01]
        [--repeats 3]

Prints the per-query timing series and a least-squares R² linearity check
(the paper: "the produced TLC plans scale linearly with size").
"""

from __future__ import annotations

import argparse

from repro.bench import Harness, figure17_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--factors", default="0.001,0.002,0.005,0.01",
        help="comma-separated XMark factors",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    factors = [float(f) for f in args.factors.split(",") if f.strip()]
    harness = Harness()
    print(f"Figure 17 — TLC scalability over factors {factors}\n")
    reports = harness.figure17(factors=factors, repeats=args.repeats)
    print(figure17_table(reports))


if __name__ == "__main__":
    main()
