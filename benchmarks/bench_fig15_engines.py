"""E1 — Figure 15: execution time of every query under all four engines.

One pytest-benchmark entry per (query, engine) cell of the paper's table.
The paper's claims to reproduce (Section 6.3):

* TLC beats NAV everywhere, often by orders of magnitude;
* TLC beats TAX everywhere by a large factor;
* TLC beats or ties GTP, up to ~an order of magnitude on heavy
  heterogeneity instigators (counts, LETs, nested queries, many A/R).

Run ``python benchmarks/report_fig15.py`` for the paper-style table.
"""

from __future__ import annotations

import pytest

from repro.xmark import FIGURE15_ORDER, QUERIES

#: NAV on x9 is cubic (three nested loops); it stays in the report script
#: but is excluded from the per-commit benchmark grid.
_GRID = [
    (name, engine)
    for name in FIGURE15_ORDER
    for engine in ("tlc", "gtp", "tax", "nav")
    if not (name == "x9" and engine == "nav")
]


@pytest.mark.parametrize(
    "query_name,engine_name",
    _GRID,
    ids=[f"{q}-{e}" for q, e in _GRID],
)
def test_figure15_cell(benchmark, harness, bench_factor,
                       query_name, engine_name):
    engine = harness.engine_for(bench_factor)
    query = QUERIES[query_name].text

    benchmark.group = f"fig15-{query_name}"
    result = benchmark.pedantic(
        lambda: engine.run(query, engine=engine_name),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result is not None
