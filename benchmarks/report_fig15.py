#!/usr/bin/env python
"""Regenerate Figure 15: the execution-time grid for all four engines.

Usage::

    python benchmarks/report_fig15.py [--factor 0.005] [--repeats 3]
        [--queries x1,x2,Q1] [--engines tlc,gtp,tax,nav] [--counters]

Prints the paper-layout table (queries × engines, with the comments
column), the per-query TLC speedups, and optionally the work counters
that explain each gap.
"""

from __future__ import annotations

import argparse

from repro.bench import (
    Harness,
    counters_table,
    figure15_speedups,
    figure15_table,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--factor", type=float, default=0.005,
                        help="XMark scale factor (default 0.005)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per cell; >2 drops min/max "
                             "(the paper's methodology)")
    parser.add_argument("--queries", default="",
                        help="comma-separated subset (default: all 23)")
    parser.add_argument("--engines", default="tlc,gtp,tax,nav")
    parser.add_argument("--counters", action="store_true",
                        help="also print the work-counter table")
    args = parser.parse_args()

    harness = Harness()
    queries = (
        [q.strip() for q in args.queries.split(",") if q.strip()] or None
    )
    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    print(f"Figure 15 — XMark factor {args.factor}, "
          f"{args.repeats} run(s) per cell\n")
    reports = harness.figure15(
        factor=args.factor,
        queries=queries,
        engines=engines,
        repeats=args.repeats,
    )
    print(figure15_table(reports, engines))
    print()
    print("TLC speedups (paper: TLC beats NAV and TAX everywhere, "
          "GTP up to ~an order of magnitude):\n")
    print(figure15_speedups(
        reports, [e for e in engines if e != "tlc"]
    ))
    if args.counters:
        print("\nWork counters (why each engine costs what it costs):\n")
        print(counters_table(reports))


if __name__ == "__main__":
    main()
