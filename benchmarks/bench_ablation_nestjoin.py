"""E9 — Ablation: nest-join matching vs group-by restructuring.

The central physical design choice of Section 5.2: APT ``*``/``+`` edges
are matched with nest-structural-joins instead of flat joins followed by
an explicit grouping procedure.  This ablation runs the *same* logical
query both ways — the TLC plan (nest-joins) and the GTP plan, which is
identical except that nesting is recovered by split/group/merge — so the
measured gap isolates the operator choice.
"""

from __future__ import annotations

import pytest

from repro.xmark import QUERIES

#: Count-heavy queries, where restructuring work dominates.
ABLATION_QUERIES = ("x5", "x6", "x7", "x20", "Q1")

_GRID = [
    (name, engine)
    for name in ABLATION_QUERIES
    for engine in ("tlc", "gtp")
]


@pytest.mark.parametrize(
    "query_name,engine_name",
    _GRID,
    ids=[f"{q}-{'nestjoin' if e == 'tlc' else 'groupby'}"
         for q, e in _GRID],
)
def test_nestjoin_vs_groupby(benchmark, harness, bench_factor,
                             query_name, engine_name):
    engine = harness.engine_for(bench_factor)
    query = QUERIES[query_name].text

    benchmark.group = f"ablation-nest-{query_name}"
    benchmark.pedantic(
        lambda: engine.run(query, engine=engine_name),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("query_name", ABLATION_QUERIES)
def test_groupby_counter_gap(harness, bench_factor, query_name):
    """The mechanism: GTP performs group-bys, TLC (almost) none."""
    engine = harness.engine_for(bench_factor)
    query = QUERIES[query_name].text
    engine.db.reset_metrics()
    engine.run(query, engine="tlc")
    tlc_groups = engine.db.metrics.groupby_ops
    engine.db.reset_metrics()
    engine.run(query, engine="gtp")
    gtp_groups = engine.db.metrics.groupby_ops
    assert gtp_groups > tlc_groups
