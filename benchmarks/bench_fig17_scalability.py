"""E3 — Figure 17: TLC scalability across XMark scale factors.

The paper sweeps factors 0.1–5 and observes linear scaling for x3, x5,
x13, Q1 and Q2 (value-join queries scale linearly thanks to the
sort–merge–sort strategy of Section 5.1).  The same geometric sweep runs
here at Python-feasible sizes; ``report_fig17.py`` prints the series and
a least-squares linearity check.
"""

from __future__ import annotations

import pytest

from repro.xmark import FIGURE17_QUERIES, QUERIES

#: Geometric factor sweep (the paper's 0.1 … 5, scaled down ~50×).
FACTORS = (0.001, 0.002, 0.004, 0.008)

_GRID = [
    (name, factor) for name in FIGURE17_QUERIES for factor in FACTORS
]


@pytest.mark.parametrize(
    "query_name,factor",
    _GRID,
    ids=[f"{q}-f{f}" for q, f in _GRID],
)
def test_figure17_cell(benchmark, harness, query_name, factor):
    engine = harness.engine_for(factor)
    query = QUERIES[query_name].text

    benchmark.group = f"fig17-{query_name}"
    benchmark.extra_info["factor"] = factor
    result = benchmark.pedantic(
        lambda: engine.run(query, engine="tlc"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result is not None
