"""E2 — Figure 16: plain TLC plans vs rewrite-optimized (OPT) plans.

The Flatten and Shadow/Illuminate rewrites of Section 4 apply to x3, x5,
Q1 and Q2; the paper reports OPT "up to 2 times faster" from the
eliminated redundant structural joins and data accesses.

Run ``python benchmarks/report_fig16.py`` for the paper-style table.
"""

from __future__ import annotations

import pytest

from repro.xmark import FIGURE16_QUERIES, QUERIES

_GRID = [
    (name, optimized)
    for name in FIGURE16_QUERIES
    for optimized in (False, True)
]


@pytest.mark.parametrize(
    "query_name,optimized",
    _GRID,
    ids=[f"{q}-{'opt' if o else 'tlc'}" for q, o in _GRID],
)
def test_figure16_cell(benchmark, harness, bench_factor,
                       query_name, optimized):
    engine = harness.engine_for(bench_factor)
    query = QUERIES[query_name].text

    benchmark.group = f"fig16-{query_name}"
    result = benchmark.pedantic(
        lambda: engine.run(query, engine="tlc", optimize=optimized),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result is not None


@pytest.mark.parametrize("query_name", FIGURE16_QUERIES)
def test_rewrites_do_not_change_results(harness, bench_factor, query_name):
    """Correctness guard riding along with the benchmark."""
    engine = harness.engine_for(bench_factor)
    query = QUERIES[query_name].text
    plain = sorted(
        repr(t.canonical(True)) for t in engine.run(query, engine="tlc")
    )
    optimized = sorted(
        repr(t.canonical(True))
        for t in engine.run(query, engine="tlc", optimize=True)
    )
    assert plain == optimized
