"""E10 — Ablation: sort–merge–sort vs nested-loop value joins.

Section 5.1 argues that interval node ids (Property 3) let TIMBER replace
order-preserving nested-loop joins with sort–merge–sort: sort by join
value, merge, then re-sort the output by the left root's node id.  This
ablation times both physical strategies on the same join workload and
verifies the document-order guarantee holds either way.
"""

from __future__ import annotations

import pytest

from repro.model.value import atomize, compare
from repro.physical.value_join import merge_equi_join


def _workload(harness, factor):
    """(person @id values, bidder @person values) with payload indexes."""
    engine = harness.engine_for(factor)
    db = engine.db
    persons = [
        (db.value_of(nid), nid)
        for nid in db.value_lookup("auction.xml", "@id", ">=", "")
        if db.value_of(nid) and db.value_of(nid).startswith("person")
    ]
    refs = [
        (db.value_of(nid), nid)
        for nid in db.tag_lookup("auction.xml", "@person")
    ]
    return persons, refs


def _nested_loop(left, right):
    return [
        (l, r)
        for l in left
        for r in right
        if compare(atomize(l[0]), "=", atomize(r[0]))
    ]


def _sort_merge_sort(left, right):
    pairs = merge_equi_join(
        left, right, lambda x: x[0], lambda x: x[0]
    )
    # the final sort restores document order of the left side
    pairs.sort(key=lambda pair: pair[0][1].order_key)
    return pairs


@pytest.mark.parametrize("strategy", ["sort-merge-sort", "nested-loop"])
def test_value_join_strategies(benchmark, harness, bench_factor, strategy):
    left, right = _workload(harness, bench_factor)
    benchmark.group = "ablation-valuejoin"
    if strategy == "sort-merge-sort":
        result = benchmark.pedantic(
            lambda: _sort_merge_sort(left, right), rounds=3, iterations=1
        )
    else:
        result = benchmark.pedantic(
            lambda: _nested_loop(left, right), rounds=3, iterations=1
        )
    assert result


def test_strategies_agree_and_order_restored(harness, bench_factor):
    left, right = _workload(harness, bench_factor)
    merged = _sort_merge_sort(left, right)
    naive = _nested_loop(left, right)
    assert len(merged) == len(naive)
    assert {(l[1], r[1]) for l, r in merged} == {
        (l[1], r[1]) for l, r in naive
    }
    keys = [l[1].order_key for l, _ in merged]
    assert keys == sorted(keys)
