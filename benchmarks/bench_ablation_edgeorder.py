"""Ablation: structural-join order selection (reference [19]).

The paper defers join ordering to an optimizer and evaluates with "a
simple bottom-up approach".  ``PatternMatcher(order_edges=True)``
implements the selectivity heuristic of the paper's reference [19]:
process a node's mandatory edges cheapest-candidate-list first, so the
partial-match set shrinks before the expensive edges run.  This bench
compares both orders on star patterns whose edge selectivities differ
sharply.
"""

from __future__ import annotations

import pytest

from repro.patterns import APT, PatternMatcher, pattern_node


def star_pattern() -> APT:
    """person with three mandatory branches of very different fan-out.

    The pattern-order places the *least* selective edge (emailaddress —
    one per person) last, so naive left-to-right processing carries the
    widest partial set the longest; ordering flips that.
    """
    root = pattern_node("doc_root", 1)
    person = pattern_node("person", 2)
    interest = pattern_node("interest", 3)  # several per person
    watch = pattern_node("watch", 4)  # several, only some persons
    email = pattern_node("emailaddress", 5)  # exactly one per person
    root.add_edge(person, "ad", "-")
    person.add_edge(interest, "ad", "-")
    person.add_edge(watch, "ad", "-")
    person.add_edge(email, "pc", "-")
    return APT(root, "auction.xml")


@pytest.mark.parametrize("ordered", [False, True],
                         ids=["bottom-up", "selectivity-ordered"])
def test_edge_order_selection(benchmark, harness, bench_factor, ordered):
    db = harness.engine_for(bench_factor).db
    matcher = PatternMatcher(db, order_edges=ordered)
    benchmark.group = "ablation-edgeorder"
    result = benchmark.pedantic(
        lambda: matcher.match(star_pattern()),
        rounds=5,
        iterations=1,
    )
    assert len(result) >= 0


def test_orders_agree(harness, bench_factor):
    db = harness.engine_for(bench_factor).db
    plain = PatternMatcher(db).match(star_pattern())
    ordered = PatternMatcher(db, order_edges=True).match(star_pattern())
    assert sorted(repr(t.canonical(False)) for t in plain) == sorted(
        repr(t.canonical(False)) for t in ordered
    )
