"""Ablation: stack-tree structural join vs probe (binary-search) join.

Both implement the structural-join primitive of the paper's reference
[1]; TIMBER (and this reproduction) can use either.  The stack algorithm
streams both inputs once; the probe algorithm binary-searches descendant
runs per ancestor.  This bench compares them on the real XMark join
workloads the pattern matcher issues.
"""

from __future__ import annotations

import pytest

from repro.physical.stack_join import stack_tree_desc
from repro.physical.structural_join import pair_join

WORKLOADS = (
    ("open_auction", "bidder", "pc"),
    ("open_auction", "@person", "ad"),
    ("person", "age", "ad"),
    ("site", "item", "ad"),
)


def _inputs(harness, factor, ancestor_tag, descendant_tag):
    db = harness.engine_for(factor).db
    return (
        db.tag_lookup("auction.xml", ancestor_tag),
        db.tag_lookup("auction.xml", descendant_tag),
    )


@pytest.mark.parametrize(
    "ancestor_tag,descendant_tag,axis",
    WORKLOADS,
    ids=[f"{a}-{d}-{x}" for a, d, x in WORKLOADS],
)
@pytest.mark.parametrize("algorithm", ["probe", "stack"])
def test_structural_join_algorithms(
    benchmark, harness, bench_factor,
    ancestor_tag, descendant_tag, axis, algorithm,
):
    ancestors, descendants = _inputs(
        harness, bench_factor, ancestor_tag, descendant_tag
    )
    benchmark.group = f"sjoin-{ancestor_tag}-{descendant_tag}-{axis}"
    if algorithm == "probe":
        result = benchmark.pedantic(
            lambda: pair_join(ancestors, descendants, axis),
            rounds=5, iterations=1,
        )
    else:
        result = benchmark.pedantic(
            lambda: stack_tree_desc(ancestors, descendants, axis),
            rounds=5, iterations=1,
        )
    assert isinstance(result, list)


@pytest.mark.parametrize(
    "ancestor_tag,descendant_tag,axis",
    WORKLOADS,
    ids=[f"{a}-{d}-{x}" for a, d, x in WORKLOADS],
)
def test_algorithms_agree(harness, bench_factor,
                          ancestor_tag, descendant_tag, axis):
    ancestors, descendants = _inputs(
        harness, bench_factor, ancestor_tag, descendant_tag
    )
    probe = {
        (a.start, d.start)
        for a, d in pair_join(ancestors, descendants, axis)
    }
    stack = {
        (a.start, d.start)
        for a, d in stack_tree_desc(ancestors, descendants, axis)
    }
    assert probe == stack
