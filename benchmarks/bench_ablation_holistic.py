"""Ablation: holistic PathStack vs cascaded binary structural joins.

Section 7 names holistic joins (the paper's reference [3]) as the other
standard pattern-matching primitive beside binary structural joins.  The
difference shows on long paths: the binary-join cascade materialises one
intermediate result per edge, PathStack streams all levels at once.  The
workload is the seven-step chain of the paper's long-path queries
(x15/x16): ``closed_auctions/closed_auction/annotation/description/
parlist/listitem/text/keyword``.
"""

from __future__ import annotations

import pytest

from repro.physical.holistic import match_path_holistic
from repro.physical.structural_join import pair_join

LONG_PATH = [
    ("pc", "closed_auctions"),
    ("pc", "closed_auction"),
    ("pc", "annotation"),
    ("pc", "description"),
    ("pc", "parlist"),
    ("pc", "listitem"),
    ("pc", "text"),
    ("pc", "keyword"),
]

SHORT_PATH = [("ad", "open_auction"), ("pc", "bidder")]


def binary_join_path(db, steps):
    root = db.document("auction.xml").root_id
    partials = [(root,)]
    for axis, tag in steps:
        candidates = db.tag_lookup("auction.xml", tag)
        pairs = pair_join(
            partials,
            candidates,
            axis,
            parent_id=lambda chain: chain[-1],
        )
        partials = [chain + (child,) for chain, child in pairs]
    return partials


@pytest.mark.parametrize("path_name", ["long", "short"])
@pytest.mark.parametrize("algorithm", ["binary", "holistic"])
def test_path_matching_algorithms(benchmark, harness, bench_factor,
                                  path_name, algorithm):
    db = harness.engine_for(bench_factor).db
    steps = LONG_PATH if path_name == "long" else SHORT_PATH
    benchmark.group = f"holistic-{path_name}-path"
    if algorithm == "binary":
        result = benchmark.pedantic(
            lambda: binary_join_path(db, steps), rounds=5, iterations=1
        )
    else:
        result = benchmark.pedantic(
            lambda: match_path_holistic(db, "auction.xml", steps),
            rounds=5,
            iterations=1,
        )
    assert isinstance(result, list)


@pytest.mark.parametrize("path_name", ["long", "short"])
def test_algorithms_agree(harness, bench_factor, path_name):
    db = harness.engine_for(bench_factor).db
    steps = LONG_PATH if path_name == "long" else SHORT_PATH
    binary = {
        tuple(n.start for n in chain[1:])
        for chain in binary_join_path(db, steps)
    }
    holistic = {
        tuple(n.start for n in solution)
        for solution in match_path_holistic(db, "auction.xml", steps)
    }
    assert binary == holistic
