"""Shared benchmark fixtures: one harness (and its XMark data) per session.

Factors are deliberately small — the substrate is interpreted Python, not
the paper's C++ system; the *relative* behaviour of the engines is what
the benchmarks reproduce.  ``REPRO_BENCH_FACTOR`` scales everything up for
longer, more faithful runs::

    REPRO_BENCH_FACTOR=0.01 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.bench import Harness

#: Scale factor for the benchmark grid (overridable via environment).
BENCH_FACTOR = float(os.environ.get("REPRO_BENCH_FACTOR", "0.002"))


@pytest.fixture(scope="session")
def harness() -> Harness:
    instance = Harness()
    instance.engine_for(BENCH_FACTOR)  # pre-generate outside timings
    return instance


@pytest.fixture(scope="session")
def bench_factor() -> float:
    return BENCH_FACTOR
