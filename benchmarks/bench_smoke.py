"""CI smoke check for the columnar fast path (guards BENCH_3.json).

Re-runs the before/after fast-path sweep and compares it against the
committed ``BENCH_3.json`` baseline.  The check fails (exit 1) when

* the geomean of structural_joins-normalised wall time over the
  join-heavy queries regresses by more than the threshold (default 25%,
  ``--threshold`` / ``REPRO_BENCH_THRESHOLD``),
* any work counter (pages, joins, index entries, ...) is higher under
  the fast path than under the legacy path, or
* the fast path loses its net speedup on join-heavy queries.

Normalising wall time by structural joins executed makes the check
tolerant of scale-factor changes and (to first order) machine speed;
the threshold absorbs the rest.  Run ``python -m repro bench fastpath
--factor 0.005 --out BENCH_3.json`` to refresh the baseline after an
intentional performance change.

With ``--mode process`` a second stage runs after the fast-path gate:
the full 23-query sweep is executed through the process-pool service
(``--workers`` workers, ``--start-method`` fork or spawn) and every
result is compared byte-for-byte against a serial in-process run — the
equivalence oracle that lets the execution substrate change under the
queries.  CI runs this stage under both start methods.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py --baseline BENCH_3.json
    PYTHONPATH=src python benchmarks/bench_smoke.py \
        --mode process --workers 2 --start-method spawn
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.bench import (
    FastPathReport,
    check_against_baseline,
    compare_fastpath,
    fastpath_table,
)


def check_process_pool(
    factor: float, workers: int, start_method: str | None
) -> int:
    """Sweep all 23 queries through the process pool; 0 iff identical."""
    from repro.bench.harness import Harness
    from repro.service import QueryService
    from repro.xmark.queries import FIGURE15_ORDER, QUERIES

    engine = Harness().engine_for(factor)
    expected = {
        name: engine.run(QUERIES[name].text, "tlc").to_xml()
        for name in FIGURE15_ORDER
    }
    mismatches = []
    with QueryService(
        engine, threads=workers, mode="process", start_method=start_method
    ) as svc:
        pids = svc.prime()
        results = svc.execute_many(
            [QUERIES[name].text for name in FIGURE15_ORDER]
        )
        for name, result in zip(FIGURE15_ORDER, results):
            if result.to_xml() != expected[name]:
                mismatches.append(name)
        stats = svc.stats()
    if mismatches:
        print(
            f"\nFAIL: process-pool sweep diverged from serial on "
            f"{', '.join(mismatches)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nOK: process-pool sweep ({len(expected)} queries, "
        f"{len(pids)} workers, {svc.start_method}) byte-identical to "
        f"serial; {stats.executed} executed, {stats.failed} failed"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="BENCH_3.json",
        help="committed baseline report (default: BENCH_3.json)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=None,
        help="XMark scale factor (default: the baseline's factor)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="measurement repeats per cell (default 1: a smoke check)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_THRESHOLD", "0.25")),
        help="allowed fractional regression in normalised wall time",
    )
    parser.add_argument(
        "--out",
        help="also write the fresh report as JSON (for refreshing "
        "the baseline)",
    )
    parser.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help="process: also sweep all 23 queries through the "
        "process-pool service and require byte-identity with serial",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the --mode process stage (default 2)",
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn"),
        default=None,
        help="start method for the --mode process stage "
        "(default: platform's)",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 1
    baseline = FastPathReport.from_json(baseline_path.read_text())
    factor = args.factor if args.factor is not None else baseline.factor

    current = compare_fastpath(factor=factor, repeats=args.repeats)
    print(fastpath_table(current))
    if args.out:
        Path(args.out).write_text(current.to_json())
        print(f"wrote {args.out}", file=sys.stderr)

    findings = check_against_baseline(current, baseline, args.threshold)
    if findings:
        print("\nFAIL: fast-path smoke check", file=sys.stderr)
        for finding in findings:
            print(f"  - {finding}", file=sys.stderr)
        return 1
    print(
        f"\nOK: join-heavy speedup {current.join_heavy_speedup():.2f}x, "
        f"normalised {current.normalized_after_geomean():.1f} us/join "
        f"(baseline {baseline.normalized_after_geomean():.1f}, "
        f"threshold +{args.threshold:.0%})"
    )
    if args.mode == "process":
        return check_process_pool(factor, args.workers, args.start_method)
    return 0


if __name__ == "__main__":
    sys.exit(main())
