"""CI smoke check for the columnar fast path (guards BENCH_3.json).

Re-runs the before/after fast-path sweep and compares it against the
committed ``BENCH_3.json`` baseline.  The check fails (exit 1) when

* the geomean of structural_joins-normalised wall time over the
  join-heavy queries regresses by more than the threshold (default 25%,
  ``--threshold`` / ``REPRO_BENCH_THRESHOLD``),
* any work counter (pages, joins, index entries, ...) is higher under
  the fast path than under the legacy path, or
* the fast path loses its net speedup on join-heavy queries.

Normalising wall time by structural joins executed makes the check
tolerant of scale-factor changes and (to first order) machine speed;
the threshold absorbs the rest.  Run ``python -m repro bench fastpath
--factor 0.005 --out BENCH_3.json`` to refresh the baseline after an
intentional performance change.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py --baseline BENCH_3.json
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.bench import (
    FastPathReport,
    check_against_baseline,
    compare_fastpath,
    fastpath_table,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="BENCH_3.json",
        help="committed baseline report (default: BENCH_3.json)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=None,
        help="XMark scale factor (default: the baseline's factor)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="measurement repeats per cell (default 1: a smoke check)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_THRESHOLD", "0.25")),
        help="allowed fractional regression in normalised wall time",
    )
    parser.add_argument(
        "--out",
        help="also write the fresh report as JSON (for refreshing "
        "the baseline)",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 1
    baseline = FastPathReport.from_json(baseline_path.read_text())
    factor = args.factor if args.factor is not None else baseline.factor

    current = compare_fastpath(factor=factor, repeats=args.repeats)
    print(fastpath_table(current))
    if args.out:
        Path(args.out).write_text(current.to_json())
        print(f"wrote {args.out}", file=sys.stderr)

    findings = check_against_baseline(current, baseline, args.threshold)
    if findings:
        print("\nFAIL: fast-path smoke check", file=sys.stderr)
        for finding in findings:
            print(f"  - {finding}", file=sys.stderr)
        return 1
    print(
        f"\nOK: join-heavy speedup {current.join_heavy_speedup():.2f}x, "
        f"normalised {current.normalized_after_geomean():.1f} us/join "
        f"(baseline {baseline.normalized_after_geomean():.1f}, "
        f"threshold +{args.threshold:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
