"""CI smoke check for the columnar fast path (guards BENCH_3.json)
and the batch runtime (guards BENCH_8.json).

Re-runs the before/after fast-path sweep and compares it against the
committed ``BENCH_3.json`` baseline.  The check fails (exit 1) when

* the geomean of structural_joins-normalised wall time over the
  join-heavy queries regresses by more than the threshold (default 25%,
  ``--threshold`` / ``REPRO_BENCH_THRESHOLD``),
* any work counter (pages, joins, index entries, ...) is higher under
  the fast path than under the legacy path, or
* the fast path loses its net speedup on join-heavy queries.

Normalising wall time by structural joins executed makes the check
tolerant of scale-factor changes and (to first order) machine speed;
the threshold absorbs the rest.  Run ``python -m repro bench fastpath
--factor 0.005 --out BENCH_3.json`` to refresh the baseline after an
intentional performance change.

With ``--batch-baseline`` (CI passes ``BENCH_8.json``) a batch-runtime
stage runs after the fast-path gate: every XMark query executes with
the batch runtime off and on (both column backends) and must produce
byte-identical XML, then the fresh before/after batch sweep is gated
against the committed baseline with the same threshold — failing when
the pure-Python speedup geomean falls more than the threshold below
the committed number, when the batch runtime goes net slower than the
per-tree path, or when it increases any work counter.  Refresh with
``python -m repro bench fastpath --batch --factor 0.005 --out
BENCH_8.json``.

With ``--planner-baseline`` (CI passes ``BENCH_9.json``) a planner
stage runs: every XMark query executes with the cost-based planner off
and on and must produce byte-identical XML, then a fresh static-vs-
planned sweep is gated against the committed baseline — failing when
the planned speedup geomean falls more than the threshold below the
committed number, when planning goes clearly net slower than the
static fast path, or when no join-order win survives.  Refresh with
``python -m repro bench planner --factor 0.05 --repeats 3 --out
BENCH_9.json``.

With ``--mode process`` a further stage runs: the full 23-query sweep
is executed through the process-pool service (``--workers`` workers,
``--start-method`` fork or spawn) and every result is compared
byte-for-byte against a serial in-process run — the equivalence oracle
that lets the execution substrate change under the queries.  CI runs
this stage under both start methods.  Adding ``--spans`` runs the same
sweep with request-span recording armed: results must stay
byte-identical, every request must leave a capture carrying the
worker-side phases, and the combined Chrome-trace export must pass
:func:`repro.telemetry.spans.check_chrome_trace`.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py --baseline BENCH_3.json
    PYTHONPATH=src python benchmarks/bench_smoke.py \
        --batch-baseline BENCH_8.json
    PYTHONPATH=src python benchmarks/bench_smoke.py \
        --planner-baseline BENCH_9.json
    PYTHONPATH=src python benchmarks/bench_smoke.py \
        --mode process --workers 2 --start-method spawn
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.bench import (
    BatchReport,
    FastPathReport,
    batch_table,
    check_against_baseline,
    check_batch_against_baseline,
    compare_batch,
    compare_fastpath,
    fastpath_table,
)


def check_batch(baseline_path: Path, factor: float | None,
                repeats: int, threshold: float) -> int:
    """Byte-identity sweep plus the BENCH_8 regression gate; 0 iff OK."""
    from repro.bench.harness import Harness
    from repro.columns.arrays import numpy_available, use_numpy
    from repro.columns.batch import use_batch
    from repro.xmark.queries import FIGURE15_ORDER, QUERIES

    baseline = BatchReport.from_json(baseline_path.read_text())
    if factor is None:
        factor = baseline.factor
    harness = Harness()
    engine = harness.engine_for(factor)

    # stage 1: every query, batch off vs on (both backends), identical XML
    mismatches = []
    for name in FIGURE15_ORDER:
        text = QUERIES[name].text
        with use_batch(False):
            expected = engine.run(text, "tlc").to_xml()
        with use_batch(True), use_numpy(False):
            if engine.run(text, "tlc").to_xml() != expected:
                mismatches.append(f"{name} (pure)")
        if numpy_available():
            with use_batch(True), use_numpy(True):
                if engine.run(text, "tlc").to_xml() != expected:
                    mismatches.append(f"{name} (numpy)")
    if mismatches:
        print(
            f"\nFAIL: batch runtime diverged from the per-tree path on "
            f"{', '.join(mismatches)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nOK: batch sweep ({len(FIGURE15_ORDER)} queries, both "
        "backends) byte-identical to the per-tree path"
    )

    # stage 2: fresh before/after measurement vs the committed baseline
    current = compare_batch(factor=factor, repeats=repeats,
                            harness=harness)
    print(batch_table(current))
    findings = check_batch_against_baseline(current, baseline, threshold)
    if findings:
        print("\nFAIL: batch-runtime smoke check", file=sys.stderr)
        for finding in findings:
            print(f"  - {finding}", file=sys.stderr)
        return 1
    print(
        f"\nOK: batch speedup {current.speedup_geomean('pure'):.2f}x "
        f"pure (baseline {baseline.speedup_geomean('pure'):.2f}x, "
        f"threshold -{threshold:.0%})"
    )
    return 0


def check_planner(baseline_path: Path, factor: float | None,
                  repeats: int, threshold: float) -> int:
    """Byte-identity sweep plus the BENCH_9 regression gate; 0 iff OK."""
    from repro.bench import (
        PlannerReport,
        check_planner_against_baseline,
        compare_planner,
        planner_table,
    )
    from repro.bench.harness import Harness
    from repro.planner import use_planner
    from repro.xmark.queries import FIGURE15_ORDER, QUERIES

    baseline = PlannerReport.from_json(baseline_path.read_text())
    if factor is None:
        factor = baseline.factor
    harness = Harness()
    engine = harness.engine_for(factor)

    # stage 1: every query, planner off vs on, identical XML
    mismatches = []
    for name in FIGURE15_ORDER:
        text = QUERIES[name].text
        with use_planner(False):
            expected = engine.run(text, "tlc").to_xml()
        with use_planner(True):
            if engine.run(text, "tlc").to_xml() != expected:
                mismatches.append(name)
    if mismatches:
        print(
            f"\nFAIL: cost-based planning diverged from the static "
            f"plan shape on {', '.join(mismatches)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nOK: planner sweep ({len(FIGURE15_ORDER)} queries) "
        "byte-identical to the static fast path"
    )

    # stage 2: fresh static-vs-planned measurement vs the baseline.
    # The planner's committed edge is small (BENCH_9: 1.01x geomean),
    # so single-sample cells are noise-dominated on shared CI runners —
    # this stage always uses the BENCH_9 repeat-and-trim methodology.
    current = compare_planner(factor=factor, repeats=max(repeats, 3),
                              harness=harness)
    print(planner_table(current))
    findings = check_planner_against_baseline(current, baseline, threshold)
    if findings:
        print("\nFAIL: planner smoke check", file=sys.stderr)
        for finding in findings:
            print(f"  - {finding}", file=sys.stderr)
        return 1
    print(
        f"\nOK: planned speedup {current.speedup_geomean():.2f}x "
        f"(baseline {baseline.speedup_geomean():.2f}x, threshold "
        f"-{threshold:.0%}); join-order wins: "
        f"{', '.join(current.join_order_wins())}"
    )
    return 0


def check_process_pool(
    factor: float,
    workers: int,
    start_method: str | None,
    spans: bool = False,
) -> int:
    """Sweep all 23 queries through the process pool; 0 iff identical.

    With ``spans=True`` the sweep runs traced: every request must leave
    a span capture that crossed the worker boundary, and the combined
    Chrome-trace export must satisfy the schema checker.
    """
    from repro.bench.harness import Harness
    from repro.service import QueryService
    from repro.xmark.queries import FIGURE15_ORDER, QUERIES

    engine = Harness().engine_for(factor)
    expected = {
        name: engine.run(QUERIES[name].text, "tlc").to_xml()
        for name in FIGURE15_ORDER
    }
    mismatches = []
    with QueryService(
        engine,
        threads=workers,
        mode="process",
        start_method=start_method,
        spans=spans,
    ) as svc:
        pids = svc.prime()
        results = svc.execute_many(
            [QUERIES[name].text for name in FIGURE15_ORDER]
        )
        for name, result in zip(FIGURE15_ORDER, results):
            if result.to_xml() != expected[name]:
                mismatches.append(name)
        stats = svc.stats()
        captures = svc.span_store.tail(len(FIGURE15_ORDER))
    if mismatches:
        print(
            f"\nFAIL: process-pool sweep diverged from serial on "
            f"{', '.join(mismatches)}"
            + (" (spans enabled)" if spans else ""),
            file=sys.stderr,
        )
        return 1
    print(
        f"\nOK: process-pool sweep ({len(expected)} queries, "
        f"{len(pids)} workers, {svc.start_method}"
        + (", spans on" if spans else "")
        + ") byte-identical to "
        f"serial; {stats.executed} executed, {stats.failed} failed"
    )
    if spans:
        from repro.telemetry.spans import check_chrome_trace, to_chrome_trace

        if len(captures) != len(FIGURE15_ORDER):
            print(
                f"\nFAIL: {len(captures)} span captures for "
                f"{len(FIGURE15_ORDER)} traced requests",
                file=sys.stderr,
            )
            return 1
        missing = [
            capture.trace_id
            for capture in captures
            if "worker.execute" not in {s.name for s in capture.spans}
        ]
        if missing:
            print(
                f"\nFAIL: captures without worker-side spans: "
                f"{', '.join(missing)}",
                file=sys.stderr,
            )
            return 1
        problems = check_chrome_trace(to_chrome_trace(captures))
        if problems:
            print("\nFAIL: Chrome-trace export is malformed",
                  file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            f"OK: {len(captures)} span captures crossed the worker "
            "boundary; Chrome-trace export passes the schema check"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="BENCH_3.json",
        help="committed baseline report (default: BENCH_3.json)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=None,
        help="XMark scale factor (default: the baseline's factor)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="measurement repeats per cell (default 1: a smoke check)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_THRESHOLD", "0.25")),
        help="allowed fractional regression in normalised wall time",
    )
    parser.add_argument(
        "--out",
        help="also write the fresh report as JSON (for refreshing "
        "the baseline)",
    )
    parser.add_argument(
        "--batch-baseline",
        default=None,
        help="committed batch-runtime baseline (e.g. BENCH_8.json): "
        "also run the batch byte-identity sweep and regression gate",
    )
    parser.add_argument(
        "--planner-baseline",
        default=None,
        help="committed planner baseline (e.g. BENCH_9.json): also run "
        "the planner byte-identity sweep and regression gate",
    )
    parser.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help="process: also sweep all 23 queries through the "
        "process-pool service and require byte-identity with serial",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the --mode process stage (default 2)",
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn"),
        default=None,
        help="start method for the --mode process stage "
        "(default: platform's)",
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="with --mode process: run the sweep traced and validate "
        "the Chrome-trace export of every request's span capture",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 1
    baseline = FastPathReport.from_json(baseline_path.read_text())
    factor = args.factor if args.factor is not None else baseline.factor

    current = compare_fastpath(factor=factor, repeats=args.repeats)
    print(fastpath_table(current))
    if args.out:
        Path(args.out).write_text(current.to_json())
        print(f"wrote {args.out}", file=sys.stderr)

    findings = check_against_baseline(current, baseline, args.threshold)
    if findings:
        print("\nFAIL: fast-path smoke check", file=sys.stderr)
        for finding in findings:
            print(f"  - {finding}", file=sys.stderr)
        return 1
    print(
        f"\nOK: join-heavy speedup {current.join_heavy_speedup():.2f}x, "
        f"normalised {current.normalized_after_geomean():.1f} us/join "
        f"(baseline {baseline.normalized_after_geomean():.1f}, "
        f"threshold +{args.threshold:.0%})"
    )
    if args.batch_baseline:
        batch_baseline = Path(args.batch_baseline)
        if not batch_baseline.exists():
            print(
                f"error: batch baseline {batch_baseline} not found",
                file=sys.stderr,
            )
            return 1
        status = check_batch(
            batch_baseline, args.factor, args.repeats, args.threshold
        )
        if status:
            return status
    if args.planner_baseline:
        planner_baseline = Path(args.planner_baseline)
        if not planner_baseline.exists():
            print(
                f"error: planner baseline {planner_baseline} not found",
                file=sys.stderr,
            )
            return 1
        status = check_planner(
            planner_baseline, args.factor, args.repeats, args.threshold
        )
        if status:
            return status
    if args.mode == "process":
        return check_process_pool(
            factor, args.workers, args.start_method, spans=args.spans
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
